//! Deterministic model tests of masort's real concurrent components, run
//! under the interleaving explorer. Compiled only with the checked shim
//! active:
//!
//! ```text
//! RUSTFLAGS="--cfg masort_check" cargo test -p masort-check --test models
//! ```
//!
//! Each model keeps all shared state inside explorer tasks (sorts run with
//! the default `cpu_threads = 1` so run formation spawns no unmanaged scoped
//! threads) and uses tiny in-memory inputs so a schedule is a few thousand
//! scheduling decisions at most.
#![cfg(masort_check)]

use masort_broker::{SortRequest, SortService};
use masort_check::explore::{explore_random, Options};
use masort_core::prelude::*;
use masort_core::sync::thread;
use masort_core::verify::assert_sorted_permutation;
use std::sync::Arc;

fn opts(schedules: usize) -> Options {
    Options {
        schedules,
        seed: 0x0DE1_CA7E,
        max_steps: 500_000,
    }
}

fn tuples(n: usize, salt: u64) -> Vec<Tuple> {
    (0..n)
        .map(|i| Tuple::synthetic((i as u64).wrapping_mul(7919).wrapping_add(salt) % 97, 64))
        .collect()
}

/// `MemoryBudget` hierarchy: a parent re-targeting while a child reports
/// holdings. Every interleaving must preserve the budget invariants (checked
/// by the debug asserts inside `budget.rs` on every operation) and converge:
/// once the child reports zero, the root holds zero and no shrink request
/// can still be pending against an empty holding.
#[test]
fn budget_retarget_races_child_rollup() {
    explore_random(&opts(25), || {
        let root = MemoryBudget::new(16);
        let child = root.child(0.5);
        let setter = {
            let root = root.clone();
            thread::spawn(move || {
                for (i, t) in [8usize, 2, 12].into_iter().enumerate() {
                    root.set_target(t, i as f64);
                }
            })
        };
        let reporter = {
            let child = child.clone();
            thread::spawn(move || {
                for (i, h) in [4usize, 6, 1, 0].into_iter().enumerate() {
                    child.record_held(h, 10.0 + i as f64);
                }
            })
        };
        setter.join().expect("setter panicked");
        reporter.join().expect("reporter panicked");
        assert_eq!(root.held(), 0, "quiescent child must roll up to zero");
        assert!(!root.shrink_pending(), "no shortage with zero held");
        assert!(!child.shrink_pending());
        assert_eq!(child.target(), 6, "final child target = floor(12 * 0.5)");
    })
    .expect("no interleaving may break the budget hierarchy");
}

/// `IoPool` backpressure: one worker, competing submitters, handles redeemed
/// while the pool is being dropped. Every interleaving must run every job
/// exactly once (no deadlock between the worker's condvar wait and the
/// shutdown flag, no lost job on the drop path).
#[test]
fn io_pool_backpressure_and_shutdown() {
    explore_random(&opts(25), || {
        let pool = IoPool::new(1);
        let h1 = pool.submit(|| 1u32);
        let h2 = pool.submit_urgent(|| 2u32);
        let submitter = {
            let pool = pool.clone();
            thread::spawn(move || pool.submit(|| 3u32).wait())
        };
        drop(pool); // workers must drain the queue before exiting
        assert_eq!(h1.wait(), Some(1));
        assert_eq!(h2.wait(), Some(2));
        assert_eq!(submitter.join().expect("submitter panicked"), Some(3));
    })
    .expect("no interleaving may lose an IoPool job");
}

/// The broker under concurrent admission, completion and pool resizing: two
/// tiny sorts run while another task shrinks and re-grows the page pool.
/// Every interleaving must deliver both sorted outputs and leave the service
/// consistent (the resize may suspend/repartition jobs but never wedge or
/// corrupt them).
#[test]
fn broker_resize_races_admission_and_completion() {
    explore_random(&opts(10), || {
        let svc = Arc::new(SortService::builder().pool_pages(12).workers(2).build());
        let cfg = SortConfig::default()
            .with_page_size(256)
            .with_tuple_size(64)
            .with_memory_pages(4);
        let in1 = tuples(24, 1);
        let in2 = tuples(24, 2);
        let t1 = svc
            .submit(SortRequest::tuples(cfg.clone(), in1.clone()).min_pages(2))
            .expect("submit 1");
        let resizer = {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                svc.resize_pool(6);
                svc.resize_pool(16);
            })
        };
        let t2 = svc
            .submit(SortRequest::tuples(cfg, in2.clone()).min_pages(2))
            .expect("submit 2");
        let r1 = t1.wait().expect("sort 1 failed");
        let r2 = t2.wait().expect("sort 2 failed");
        assert_sorted_permutation(&in1, &r1.into_sorted_vec().expect("read sort 1"));
        assert_sorted_permutation(&in2, &r2.into_sorted_vec().expect("read sort 2"));
        resizer.join().expect("resizer panicked");
        if let Ok(svc) = Arc::try_unwrap(svc) {
            let stats = svc.shutdown();
            assert_eq!(stats.completed, 2);
        }
    })
    .expect("no interleaving may wedge or corrupt the broker");
}
