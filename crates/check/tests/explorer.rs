//! End-to-end tests of the deterministic interleaving explorer: it must find
//! a planted deadlock and a planted lost update within a bounded number of
//! schedules, report task panics as schedule failures, and reproduce every
//! failure from the printed seed (or recorded choice trace).
//!
//! These tests use the always-compiled [`masort_check::checked`] primitives
//! directly, so they run in every build mode — no `--cfg masort_check`
//! required.

use masort_check::checked::atomic::{AtomicUsize, Ordering};
use masort_check::checked::{thread, Mutex};
use masort_check::explore::{explore_exhaustive, explore_random, replay, replay_trace, Options};
use std::sync::Arc;

fn opts(schedules: usize) -> Options {
    Options {
        schedules,
        seed: 0xD15C_0BA1,
        max_steps: 50_000,
    }
}

/// Classic ABBA deadlock: two tasks acquire the same two locks in opposite
/// orders. Most interleavings complete; the explorer must find the one where
/// each task holds one lock and wants the other.
fn abba_model() {
    let a = Arc::new(Mutex::new(0u32));
    let b = Arc::new(Mutex::new(0u32));
    let t1 = {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        thread::spawn(move || {
            let ga = a.lock();
            let mut gb = b.lock();
            *gb += *ga;
        })
    };
    let t2 = {
        let a = Arc::clone(&a);
        let b = Arc::clone(&b);
        thread::spawn(move || {
            let gb = b.lock();
            let mut ga = a.lock();
            *ga += *gb;
        })
    };
    let _ = t1.join();
    let _ = t2.join();
}

/// Unsynchronised read-modify-write on a shared counter: two tasks each do
/// `load` then `store(v + 1)`, so an interleaving exists where one update is
/// lost and the final assertion fails.
fn lost_update_model() {
    let n = Arc::new(AtomicUsize::new(0));
    let tasks: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
            })
        })
        .collect();
    for t in tasks {
        t.join().expect("task panicked");
    }
    assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
}

/// The fixed protocol: the same counter bumped with an atomic `fetch_add`.
fn correct_counter_model() {
    let n = Arc::new(AtomicUsize::new(0));
    let tasks: Vec<_> = (0..2)
        .map(|_| {
            let n = Arc::clone(&n);
            thread::spawn(move || {
                n.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    for t in tasks {
        t.join().expect("task panicked");
    }
    assert_eq!(n.load(Ordering::SeqCst), 2);
}

#[test]
fn random_walk_finds_the_abba_deadlock_and_the_seed_replays_it() {
    let failure = explore_random(&opts(100), abba_model)
        .expect_err("the explorer must find the ABBA deadlock within 100 schedules");
    assert!(
        failure.message.contains("deadlock detected"),
        "unexpected failure: {failure}"
    );
    let seed = failure.seed.expect("random-walk failures carry a seed");

    // The printed seed reproduces the exact interleaving...
    let replayed = replay(seed, &opts(1), abba_model).expect_err("the seed must replay");
    assert!(
        replayed.message.contains("deadlock detected"),
        "replay diverged: {replayed}"
    );
    // ...and so does the recorded choice trace.
    let retraced =
        replay_trace(failure.trace.clone(), &opts(1), abba_model).expect_err("trace must replay");
    assert!(retraced.message.contains("deadlock detected"));
}

#[test]
fn random_walk_finds_the_lost_update() {
    let failure = explore_random(&opts(100), lost_update_model)
        .expect_err("the explorer must find the lost update within 100 schedules");
    assert!(
        failure.message.contains("lost update"),
        "unexpected failure: {failure}"
    );
    let seed = failure.seed.expect("random-walk failures carry a seed");
    let replayed = replay(seed, &opts(1), lost_update_model).expect_err("the seed must replay");
    assert!(replayed.message.contains("lost update"));
}

#[test]
fn exhaustive_enumeration_finds_the_abba_deadlock() {
    let failure = explore_exhaustive(&opts(500), abba_model)
        .expect_err("bounded-exhaustive search must find the ABBA deadlock");
    assert!(failure.message.contains("deadlock detected"));
    assert!(
        failure.seed.is_none(),
        "exhaustive failures replay by trace"
    );
    let replayed =
        replay_trace(failure.trace.clone(), &opts(1), abba_model).expect_err("trace must replay");
    assert!(replayed.message.contains("deadlock detected"));
}

#[test]
fn correct_model_passes_every_schedule() {
    let explored = explore_random(&opts(50), correct_counter_model)
        .expect("the fetch_add protocol has no failing interleaving");
    assert_eq!(explored.schedules, 50);
}

#[test]
fn task_panic_is_reported_not_poison_cascaded() {
    // A task panics while holding a checked lock; the schedule must fail
    // with *that* panic, and a sibling task locking afterwards must recover
    // the poison rather than add an `unwrap` panic of its own.
    let failure = explore_random(&opts(1), || {
        let m = Arc::new(Mutex::new(0u32));
        let t = {
            let m = Arc::clone(&m);
            thread::spawn(move || {
                let _g = m.lock();
                panic!("boom while holding the lock");
            })
        };
        let _ = t.join();
        *m.lock() += 1;
    })
    .expect_err("the planted panic must fail the schedule");
    assert!(
        failure.message.contains("boom while holding the lock"),
        "unexpected failure: {failure}"
    );
}
