//! masort-check: deterministic concurrency checking for the masort stack.
//!
//! The paper's adaptation protocol is inherently concurrent — sorts
//! suspend, page and split while the broker re-divides memory under them —
//! and masort implements it with five layers of hand-rolled locking. This
//! crate is the correctness-tooling layer beneath all of them:
//!
//! - [`sync`]: the synchronisation shim every masort crate uses instead of
//!   `std::sync` (re-exported as `masort_core::sync`). Transparent in
//!   release, witness-instrumented in debug, explorer-instrumented under
//!   `--cfg masort_check`.
//! - [`witness`]: a lockdep-style lock-order witness that panics on the
//!   first cyclic acquisition order, with both site chains in the message.
//! - [`explore`]: a seeded cooperative scheduler that runs *model tests*
//!   over real masort protocols, deterministically replaying any failing
//!   interleaving from a printed seed.
//! - [`checked`]: the instrumented primitives behind the shim under
//!   `--cfg masort_check`.
//! - [`lint`] and the `lint-sync` binary: a source scanner failing CI when
//!   raw `std::sync::{Mutex, RwLock, Condvar, mpsc}` appears outside the
//!   shim.
//!
//! The crate is intentionally dependency-free so it can sit below
//! masort-trace, the lowest crate in the workspace.

pub mod checked;
pub mod explore;
pub mod lint;
mod rt;
pub mod sync;
pub mod witness;
