//! Instrumented synchronisation primitives for the deterministic explorer.
//!
//! Every type here has two behaviours. On a thread that belongs to an active
//! schedule (a *task* spawned by [`crate::explore`]), operations are
//! cooperative: they yield to the scheduler at every step and block by
//! parking the task, so the explorer controls every interleaving. On any
//! other thread they degrade to plain `std` behaviour, so code that touches
//! a shimmed primitive outside a model (tests, binaries) keeps working.
//!
//! Caveat for model authors: wake-ups only propagate *between tasks*. A
//! plain OS thread releasing a checked lock or sending on a checked channel
//! cannot wake a blocked task — keep all shared state inside tasks (for
//! masort models: run sorts with `cpu_threads = 1` so run formation does not
//! spawn unmanaged scoped threads).

use crate::rt;
use std::mem::ManuallyDrop;
use std::panic::Location;
// check-exempt: this module *implements* the instrumentation layer; its
// internal short critical sections are never visible to the scheduler.
use std::sync::TryLockError;
use std::time::Duration;

fn site() -> Option<rt::Site> {
    Some(Location::caller())
}

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// A mutual-exclusion lock checked by the deterministic explorer.
///
/// Poison is always recovered: a panicked holder never cascades an
/// `unwrap()` failure into other threads (the panic itself is still reported
/// by the explorer as a schedule failure).
pub struct Mutex<T: ?Sized> {
    res: u64,
    data: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new checked mutex.
    pub fn new(t: T) -> Self {
        Mutex {
            res: rt::next_res_id(),
            data: std::sync::Mutex::new(t),
        }
    }

    /// Create a checked mutex exempt from the lock-order witness. Under the
    /// explorer this is identical to [`Mutex::new`]; the name exists so the
    /// shim API is uniform across build modes.
    pub fn unwitnessed(t: T) -> Self {
        Self::new(t)
    }

    /// Consume the mutex and return its inner value, recovering poison.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking cooperatively inside a schedule.
    #[track_caller]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let site = site();
        if rt::in_model() {
            loop {
                rt::yield_point(site);
                match self.data.try_lock() {
                    Ok(g) => {
                        return MutexGuard {
                            lock: self,
                            inner: ManuallyDrop::new(g),
                        }
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        return MutexGuard {
                            lock: self,
                            inner: ManuallyDrop::new(p.into_inner()),
                        }
                    }
                    Err(TryLockError::WouldBlock) => {
                        rt::block_on(self.res, false, site);
                    }
                }
            }
        } else {
            let g = self.data.lock().unwrap_or_else(|e| e.into_inner());
            MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(g),
            }
        }
    }

    /// Try to acquire the lock without blocking; `None` if contended.
    #[track_caller]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        rt::yield_point(site());
        match self.data.try_lock() {
            Ok(g) => Some(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(g),
            }),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(p.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// RAII guard for [`Mutex`]; releasing it wakes blocked tasks.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is dropped exactly once, here; the field is never
        // touched again after this point.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        rt::wake_all(self.lock.res);
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Release the lock and return its owner (used by [`Condvar::wait`]).
    fn unlock(mut self) -> &'a Mutex<T> {
        let lock = self.lock;
        // SAFETY: `self` is forgotten immediately below, so the regular
        // `Drop` impl cannot run and double-drop `inner`.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        std::mem::forget(self);
        rt::wake_all(lock.res);
        lock
    }

    /// Extract the raw `std` guard (used by [`Condvar::wait`] off-task).
    fn into_std(mut self) -> (&'a Mutex<T>, std::sync::MutexGuard<'a, T>) {
        let lock = self.lock;
        // SAFETY: `self` is forgotten immediately below, so the regular
        // `Drop` impl cannot run and double-drop `inner`.
        let g = unsafe { ManuallyDrop::take(&mut self.inner) };
        std::mem::forget(self);
        (lock, g)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// A condition variable checked by the deterministic explorer.
pub struct Condvar {
    res: u64,
    cv: std::sync::Condvar,
}

impl Condvar {
    /// Create a new checked condition variable.
    pub fn new() -> Self {
        Condvar {
            res: rt::next_res_id(),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Release `guard`, wait for a notification, and re-acquire the lock.
    #[track_caller]
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let site = site();
        if rt::in_model() {
            // The calling task holds the scheduler token across the unlock
            // and the block registration, so a notifier cannot slip between
            // them: no lost wake-ups.
            let lock = guard.unlock();
            rt::block_on(self.res, false, site);
            lock.lock()
        } else {
            let (lock, g) = guard.into_std();
            let g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
            MutexGuard {
                lock,
                inner: ManuallyDrop::new(g),
            }
        }
    }

    /// Like [`Condvar::wait`] with a timeout; the second value is `true`
    /// when the wait timed out. Inside a schedule the timeout only fires
    /// when every other task is blocked (logical idle time).
    #[track_caller]
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        let site = site();
        if rt::in_model() {
            let lock = guard.unlock();
            let wake = rt::block_on(self.res, true, site);
            (lock.lock(), wake == rt::Wake::TimedOut)
        } else {
            let (lock, g) = guard.into_std();
            let (g, to) = self
                .cv
                .wait_timeout(g, dur)
                .unwrap_or_else(|e| e.into_inner());
            (
                MutexGuard {
                    lock,
                    inner: ManuallyDrop::new(g),
                },
                to.timed_out(),
            )
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        rt::wake_one(self.res);
        self.cv.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        rt::wake_all(self.res);
        self.cv.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

/// A reader–writer lock checked by the deterministic explorer.
pub struct RwLock<T: ?Sized> {
    res: u64,
    data: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new checked reader–writer lock.
    pub fn new(t: T) -> Self {
        RwLock {
            res: rt::next_res_id(),
            data: std::sync::RwLock::new(t),
        }
    }

    /// Witness-exempt constructor; identical to [`RwLock::new`] here.
    pub fn unwitnessed(t: T) -> Self {
        Self::new(t)
    }

    /// Consume the lock and return its inner value, recovering poison.
    pub fn into_inner(self) -> T {
        self.data.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared (read) access.
    #[track_caller]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let site = site();
        if rt::in_model() {
            loop {
                rt::yield_point(site);
                match self.data.try_read() {
                    Ok(g) => {
                        return RwLockReadGuard {
                            lock: self,
                            inner: ManuallyDrop::new(g),
                        }
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        return RwLockReadGuard {
                            lock: self,
                            inner: ManuallyDrop::new(p.into_inner()),
                        }
                    }
                    Err(TryLockError::WouldBlock) => {
                        rt::block_on(self.res, false, site);
                    }
                }
            }
        } else {
            let g = self.data.read().unwrap_or_else(|e| e.into_inner());
            RwLockReadGuard {
                lock: self,
                inner: ManuallyDrop::new(g),
            }
        }
    }

    /// Acquire exclusive (write) access.
    #[track_caller]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let site = site();
        if rt::in_model() {
            loop {
                rt::yield_point(site);
                match self.data.try_write() {
                    Ok(g) => {
                        return RwLockWriteGuard {
                            lock: self,
                            inner: ManuallyDrop::new(g),
                        }
                    }
                    Err(TryLockError::Poisoned(p)) => {
                        return RwLockWriteGuard {
                            lock: self,
                            inner: ManuallyDrop::new(p.into_inner()),
                        }
                    }
                    Err(TryLockError::WouldBlock) => {
                        rt::block_on(self.res, false, site);
                    }
                }
            }
        } else {
            let g = self.data.write().unwrap_or_else(|e| e.into_inner());
            RwLockWriteGuard {
                lock: self,
                inner: ManuallyDrop::new(g),
            }
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: ManuallyDrop<std::sync::RwLockReadGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        rt::wake_all(self.lock.res);
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    inner: ManuallyDrop<std::sync::RwLockWriteGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is dropped exactly once, here.
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        rt::wake_all(self.lock.res);
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

/// Checked atomic integer and boolean types.
///
/// Each operation is a scheduler yield point followed by the corresponding
/// `std` atomic operation, so the explorer can interleave tasks between any
/// two atomic accesses. Orderings are accepted for API compatibility; under
/// the cooperative scheduler every operation is sequentially consistent.
pub mod atomic {
    use crate::rt;
    use std::panic::Location;
    pub use std::sync::atomic::Ordering;

    macro_rules! checked_atomic_int {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            pub struct $name(pub(crate) $std);

            impl $name {
                /// Create a new checked atomic.
                pub const fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                /// Load the value (yield point inside a schedule).
                #[track_caller]
                pub fn load(&self, order: Ordering) -> $prim {
                    rt::yield_point(Some(Location::caller()));
                    self.0.load(order)
                }

                /// Store a value (yield point inside a schedule).
                #[track_caller]
                pub fn store(&self, v: $prim, order: Ordering) {
                    rt::yield_point(Some(Location::caller()));
                    self.0.store(v, order)
                }

                /// Swap in a value, returning the previous one.
                #[track_caller]
                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    rt::yield_point(Some(Location::caller()));
                    self.0.swap(v, order)
                }

                /// Add, returning the previous value.
                #[track_caller]
                pub fn fetch_add(&self, v: $prim, order: Ordering) -> $prim {
                    rt::yield_point(Some(Location::caller()));
                    self.0.fetch_add(v, order)
                }

                /// Subtract, returning the previous value.
                #[track_caller]
                pub fn fetch_sub(&self, v: $prim, order: Ordering) -> $prim {
                    rt::yield_point(Some(Location::caller()));
                    self.0.fetch_sub(v, order)
                }

                /// Maximum, returning the previous value.
                #[track_caller]
                pub fn fetch_max(&self, v: $prim, order: Ordering) -> $prim {
                    rt::yield_point(Some(Location::caller()));
                    self.0.fetch_max(v, order)
                }

                /// Minimum, returning the previous value.
                #[track_caller]
                pub fn fetch_min(&self, v: $prim, order: Ordering) -> $prim {
                    rt::yield_point(Some(Location::caller()));
                    self.0.fetch_min(v, order)
                }

                /// Compare-and-exchange; yield point inside a schedule.
                #[track_caller]
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    rt::yield_point(Some(Location::caller()));
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// Mutable access without synchronisation.
                pub fn get_mut(&mut self) -> &mut $prim {
                    self.0.get_mut()
                }

                /// Consume the atomic and return the value.
                pub fn into_inner(self) -> $prim {
                    self.0.into_inner()
                }
            }
        };
    }

    checked_atomic_int!(
        /// Checked `AtomicU64`.
        AtomicU64,
        std::sync::atomic::AtomicU64,
        u64
    );
    checked_atomic_int!(
        /// Checked `AtomicUsize`.
        AtomicUsize,
        std::sync::atomic::AtomicUsize,
        usize
    );
    checked_atomic_int!(
        /// Checked `AtomicI64`.
        AtomicI64,
        std::sync::atomic::AtomicI64,
        i64
    );
    checked_atomic_int!(
        /// Checked `AtomicU32`.
        AtomicU32,
        std::sync::atomic::AtomicU32,
        u32
    );

    /// Checked `AtomicBool`.
    #[derive(Debug, Default)]
    pub struct AtomicBool(std::sync::atomic::AtomicBool);

    impl AtomicBool {
        /// Create a new checked atomic boolean.
        pub const fn new(v: bool) -> Self {
            Self(std::sync::atomic::AtomicBool::new(v))
        }

        /// Load the value (yield point inside a schedule).
        #[track_caller]
        pub fn load(&self, order: Ordering) -> bool {
            rt::yield_point(Some(Location::caller()));
            self.0.load(order)
        }

        /// Store a value (yield point inside a schedule).
        #[track_caller]
        pub fn store(&self, v: bool, order: Ordering) {
            rt::yield_point(Some(Location::caller()));
            self.0.store(v, order)
        }

        /// Swap in a value, returning the previous one.
        #[track_caller]
        pub fn swap(&self, v: bool, order: Ordering) -> bool {
            rt::yield_point(Some(Location::caller()));
            self.0.swap(v, order)
        }

        /// Compare-and-exchange; yield point inside a schedule.
        #[track_caller]
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::yield_point(Some(Location::caller()));
            self.0.compare_exchange(current, new, success, failure)
        }
    }
}

// ---------------------------------------------------------------------------
// mpsc channels
// ---------------------------------------------------------------------------

/// Checked multi-producer single-consumer channels, API-compatible with the
/// subset of `std::sync::mpsc` masort uses. Error types are re-used from
/// `std` so call sites (`e.0`, `TryRecvError::Empty`, …) port unchanged.
pub mod mpsc {
    use crate::rt;
    use std::collections::VecDeque;
    use std::panic::Location;
    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError, TrySendError};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        recv_alive: bool,
    }

    struct Chan<T> {
        state: std::sync::Mutex<ChanState<T>>,
        /// Wakes plain-OS-thread receivers; tasks use `res_recv`.
        not_empty: std::sync::Condvar,
        /// Wakes plain-OS-thread (bounded) senders; tasks use `res_send`.
        not_full: std::sync::Condvar,
        res_recv: u64,
        res_send: u64,
        cap: Option<usize>,
    }

    impl<T> Chan<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, ChanState<T>> {
            self.state.lock().unwrap_or_else(|e| e.into_inner())
        }
    }

    fn new_chan<T>(cap: Option<usize>) -> Arc<Chan<T>> {
        Arc::new(Chan {
            state: std::sync::Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                recv_alive: true,
            }),
            not_empty: std::sync::Condvar::new(),
            not_full: std::sync::Condvar::new(),
            res_recv: rt::next_res_id(),
            res_send: rt::next_res_id(),
            cap,
        })
    }

    /// Create an unbounded checked channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let c = new_chan(None);
        (
            Sender {
                chan: Arc::clone(&c),
            },
            Receiver { chan: c },
        )
    }

    /// Create a bounded checked channel with capacity `bound`.
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        let c = new_chan(Some(bound));
        (
            SyncSender {
                chan: Arc::clone(&c),
            },
            Receiver { chan: c },
        )
    }

    fn do_send<T>(chan: &Chan<T>, t: T, site: Option<rt::Site>) -> Result<(), SendError<T>> {
        loop {
            rt::yield_point(site);
            {
                let mut st = chan.lock();
                if !st.recv_alive {
                    return Err(SendError(t));
                }
                if chan.cap.is_none_or(|c| st.queue.len() < c) {
                    st.queue.push_back(t);
                    drop(st);
                    rt::wake_all(chan.res_recv);
                    chan.not_empty.notify_one();
                    return Ok(());
                }
            }
            if rt::in_model() {
                rt::block_on(chan.res_send, false, site);
            } else {
                let mut st = chan.lock();
                while st.recv_alive && chan.cap.is_some_and(|c| st.queue.len() >= c) {
                    st = chan.not_full.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                drop(st);
            }
        }
    }

    fn close_sender<T>(chan: &Chan<T>) {
        let mut st = chan.lock();
        st.senders -= 1;
        let last = st.senders == 0;
        drop(st);
        if last {
            rt::wake_all(chan.res_recv);
            chan.not_empty.notify_all();
        }
    }

    fn add_sender<T>(chan: &Chan<T>) {
        chan.lock().senders += 1;
    }

    /// Sending half of an unbounded checked channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Send a value; fails if the receiver was dropped.
        #[track_caller]
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            do_send(&self.chan, t, Some(Location::caller()))
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            add_sender(&self.chan);
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            close_sender(&self.chan);
        }
    }

    /// Sending half of a bounded checked channel.
    pub struct SyncSender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> SyncSender<T> {
        /// Send a value, blocking while the channel is full; fails if the
        /// receiver was dropped.
        #[track_caller]
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            do_send(&self.chan, t, Some(Location::caller()))
        }

        /// Send without blocking; reports a full or disconnected channel.
        #[track_caller]
        pub fn try_send(&self, t: T) -> Result<(), TrySendError<T>> {
            rt::yield_point(Some(Location::caller()));
            let mut st = self.chan.lock();
            if !st.recv_alive {
                return Err(TrySendError::Disconnected(t));
            }
            if self.chan.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(t));
            }
            st.queue.push_back(t);
            drop(st);
            rt::wake_all(self.chan.res_recv);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            add_sender(&self.chan);
            SyncSender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            close_sender(&self.chan);
        }
    }

    /// Receiving half of a checked channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Receive a value, blocking until one arrives or every sender is
        /// dropped.
        #[track_caller]
        pub fn recv(&self) -> Result<T, RecvError> {
            let site = Some(Location::caller());
            loop {
                rt::yield_point(site);
                {
                    let mut st = self.chan.lock();
                    if let Some(t) = st.queue.pop_front() {
                        drop(st);
                        rt::wake_all(self.chan.res_send);
                        self.chan.not_full.notify_one();
                        return Ok(t);
                    }
                    if st.senders == 0 {
                        return Err(RecvError);
                    }
                }
                if rt::in_model() {
                    rt::block_on(self.chan.res_recv, false, site);
                } else {
                    let mut st = self.chan.lock();
                    while st.queue.is_empty() && st.senders > 0 {
                        st = self
                            .chan
                            .not_empty
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }

        /// Receive with a timeout. Inside a schedule the timeout only fires
        /// once every other task is blocked.
        #[track_caller]
        pub fn recv_timeout(&self, dur: Duration) -> Result<T, RecvTimeoutError> {
            let site = Some(Location::caller());
            let deadline = Instant::now() + dur;
            loop {
                rt::yield_point(site);
                {
                    let mut st = self.chan.lock();
                    if let Some(t) = st.queue.pop_front() {
                        drop(st);
                        rt::wake_all(self.chan.res_send);
                        self.chan.not_full.notify_one();
                        return Ok(t);
                    }
                    if st.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                }
                if rt::in_model() {
                    if rt::block_on(self.chan.res_recv, true, site) == rt::Wake::TimedOut {
                        // One last drain check happens on the next loop
                        // iteration; if the queue is still empty, time out.
                        let st = self.chan.lock();
                        if st.queue.is_empty() {
                            return Err(RecvTimeoutError::Timeout);
                        }
                    }
                } else {
                    let mut st = self.chan.lock();
                    while st.queue.is_empty() && st.senders > 0 {
                        let now = Instant::now();
                        if now >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        let (g, _) = self
                            .chan
                            .not_empty
                            .wait_timeout(st, deadline - now)
                            .unwrap_or_else(|e| e.into_inner());
                        st = g;
                    }
                }
            }
        }

        /// Receive without blocking.
        #[track_caller]
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            rt::yield_point(Some(Location::caller()));
            let mut st = self.chan.lock();
            if let Some(t) = st.queue.pop_front() {
                drop(st);
                rt::wake_all(self.chan.res_send);
                self.chan.not_full.notify_one();
                return Ok(t);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Drain currently-queued values without blocking.
        pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
            std::iter::from_fn(move || self.try_recv().ok())
        }
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for SyncSender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SyncSender").finish_non_exhaustive()
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.lock();
            st.recv_alive = false;
            st.queue.clear();
            drop(st);
            rt::wake_all(self.chan.res_send);
            self.chan.not_full.notify_all();
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }
}

// ---------------------------------------------------------------------------
// Threads
// ---------------------------------------------------------------------------

/// Checked thread spawning: inside a schedule, "threads" are cooperative
/// tasks of the explorer; outside, plain OS threads.
pub mod thread {
    use crate::rt;
    use std::panic::Location;
    use std::sync::Arc;
    use std::time::Duration;

    type PanicPayload = Box<dyn std::any::Any + Send + 'static>;
    type Slot<T> = Arc<std::sync::Mutex<Option<Result<T, PanicPayload>>>>;

    /// Handle to a checked thread; `join` returns the closure's result.
    pub enum JoinHandle<T> {
        /// A cooperative task of an active schedule.
        Task {
            /// Result slot filled when the task finishes.
            slot: Slot<T>,
            /// Runtime resource joiners block on.
            res: u64,
        },
        /// A plain OS thread (spawned outside any schedule).
        Os(std::thread::JoinHandle<T>),
    }

    impl<T> std::fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                JoinHandle::Task { .. } => f.debug_struct("JoinHandle::Task"),
                JoinHandle::Os(_) => f.debug_struct("JoinHandle::Os"),
            }
            .finish_non_exhaustive()
        }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread/task to finish and return its result.
        #[track_caller]
        pub fn join(self) -> std::thread::Result<T> {
            match self {
                JoinHandle::Os(h) => h.join(),
                JoinHandle::Task { slot, res } => {
                    let site = Some(Location::caller());
                    loop {
                        rt::yield_point(site);
                        if let Some(r) = slot.lock().unwrap_or_else(|e| e.into_inner()).take() {
                            return r;
                        }
                        rt::block_on(res, false, site);
                    }
                }
            }
        }
    }

    /// Named-thread builder mirroring `std::thread::Builder`.
    #[derive(Default)]
    pub struct Builder {
        name: Option<String>,
    }

    impl Builder {
        /// Create a builder with no name set.
        pub fn new() -> Self {
            Builder::default()
        }

        /// Set the thread/task name (used in deadlock and panic reports).
        pub fn name(mut self, name: String) -> Self {
            self.name = Some(name);
            self
        }

        /// Spawn the thread or task.
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            if rt::in_model() {
                let name = self.name.unwrap_or_else(|| "task".to_string());
                let slot: Slot<T> = Arc::new(std::sync::Mutex::new(None));
                let res = rt::next_res_id();
                let slot2 = Arc::clone(&slot);
                let name2 = name.clone();
                rt::spawn_task(
                    name,
                    Box::new(move || {
                        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                        if let Err(ref payload) = r {
                            rt::note_panic(&name2, payload.as_ref());
                        }
                        *slot2.lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
                        rt::wake_all(res);
                    }),
                );
                // Spawning is itself a scheduling choice: the child may run
                // before the spawner continues.
                rt::yield_point(None);
                Ok(JoinHandle::Task { slot, res })
            } else {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                b.spawn(f).map(JoinHandle::Os)
            }
        }
    }

    /// Spawn an unnamed checked thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        Builder::new().spawn(f).expect("failed to spawn thread")
    }

    /// Sleep: inside a schedule this is a pure yield point (logical time
    /// advances only at idle); outside it is a real sleep.
    #[track_caller]
    pub fn sleep(dur: Duration) {
        if rt::in_model() {
            rt::yield_point(Some(Location::caller()));
        } else {
            std::thread::sleep(dur);
        }
    }

    /// Yield the scheduler token (or the OS scheduler, off-task).
    #[track_caller]
    pub fn yield_now() {
        if rt::in_model() {
            rt::yield_point(Some(Location::caller()));
        } else {
            std::thread::yield_now();
        }
    }
}
