//! CI gate for the raw-sync lint: scans the workspace for direct
//! `std::sync::{Mutex, RwLock, Condvar}` / `std::sync::mpsc` use outside
//! the shim and exits non-zero with a listing when any is found.
//!
//! Usage: `cargo run -p masort-check --bin lint-sync [ROOT...]`
//! (defaults to the workspace root's `crates/` and `src/`).

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let roots: Vec<PathBuf> = if args.is_empty() {
        // CARGO_MANIFEST_DIR = <workspace>/crates/check
        let ws = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf())
            .unwrap_or_else(|| PathBuf::from("."));
        ["crates", "src"]
            .iter()
            .map(|d| ws.join(d))
            .filter(|p| p.is_dir())
            .collect()
    } else {
        args.into_iter().map(PathBuf::from).collect()
    };

    let mut findings = Vec::new();
    for root in &roots {
        findings.extend(masort_check::lint::scan_tree(root));
    }

    if findings.is_empty() {
        println!(
            "lint-sync: OK — no raw std::sync primitives outside the shim ({} roots scanned)",
            roots.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "lint-sync: {} raw std::sync primitive(s) found:",
            findings.len()
        );
        for f in &findings {
            eprintln!("  {f}");
        }
        ExitCode::FAILURE
    }
}
