//! The lock-order witness: a per-process acquisition graph over *lock
//! classes* that panics the first time a cyclic ordering (a potential
//! deadlock) is observed — long before any schedule actually deadlocks.
//!
//! A lock's **class** is the source location of its `Mutex::new` /
//! `RwLock::new` call (captured with `#[track_caller]`), exactly like the
//! Linux kernel's lockdep: all budgets share one class, all ticket slots
//! another, and a consistent acquisition order between *classes* guarantees
//! deadlock freedom between *instances*.
//!
//! On every acquisition the witness records one `held → acquired` edge per
//! lock currently held by the thread. Edges are deduplicated in a global
//! graph, so after warm-up an acquire costs one thread-local stack push and
//! one read-locked hash lookup per held lock — O(1). When a *new* edge
//! closes a cycle, the witness panics with both chains: the acquisition
//! stack that created the new edge, and the stack recorded when the
//! conflicting (reverse-path) edge was first seen.
//!
//! The witness is compiled out entirely in release builds and replaced by
//! the deterministic explorer's own deadlock detection under
//! `cfg(masort_check)`.

/// A lock class: the `file:line:column` of the lock's construction site.
pub type Site = &'static std::panic::Location<'static>;

#[cfg(all(debug_assertions, not(masort_check)))]
mod imp {
    use super::Site;
    use std::cell::RefCell;
    use std::collections::{HashMap, HashSet};
    // check-exempt: the witness is the instrumentation layer itself.
    use std::sync::{OnceLock, RwLock};

    /// A class key: compare sites by location, not by reference identity
    /// (`Location` statics are not guaranteed unique per call site).
    type Key = (&'static str, u32, u32);

    fn key(site: Site) -> Key {
        (site.file(), site.line(), site.column())
    }

    #[derive(Default)]
    struct Graph {
        /// Deduplicated `held → acquired` edges, each with the held-stack
        /// snapshot recorded when the edge was first observed.
        edges: HashMap<(Key, Key), Vec<Key>>,
        /// Adjacency view of `edges` for cycle search.
        adj: HashMap<Key, Vec<Key>>,
    }

    impl Graph {
        /// True if `from` can reach `to` through recorded edges.
        fn reaches(&self, from: Key, to: Key) -> bool {
            let mut stack = vec![from];
            let mut seen = HashSet::new();
            while let Some(k) = stack.pop() {
                if k == to {
                    return true;
                }
                if seen.insert(k) {
                    if let Some(next) = self.adj.get(&k) {
                        stack.extend(next.iter().copied());
                    }
                }
            }
            false
        }
    }

    fn graph() -> &'static RwLock<Graph> {
        static GRAPH: OnceLock<RwLock<Graph>> = OnceLock::new();
        GRAPH.get_or_init(|| RwLock::new(Graph::default()))
    }

    thread_local! {
        /// Lock classes currently held by this thread, in acquisition order.
        static HELD: RefCell<Vec<Key>> = const { RefCell::new(Vec::new()) };
    }

    fn fmt_chain(chain: &[Key]) -> String {
        chain
            .iter()
            .map(|(f, l, c)| format!("{f}:{l}:{c}"))
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    pub(super) fn on_acquire(site: Site) {
        let new = key(site);
        let held_now: Vec<Key> = HELD.with(|h| h.borrow().clone());
        for &held in &held_now {
            // Same-class edges (two instances of one construction site held
            // together) are skipped: a hierarchy re-using one constructor is
            // common and instance-level order cannot be told apart from a
            // class-level cycle. See the README's exemption policy.
            if held == new {
                continue;
            }
            let edge = (held, new);
            // Fast path: the edge is already known, nothing to record.
            {
                let g = graph().read().unwrap_or_else(|e| e.into_inner());
                if g.edges.contains_key(&edge) {
                    continue;
                }
            }
            let mut g = graph().write().unwrap_or_else(|e| e.into_inner());
            if g.edges.contains_key(&edge) {
                continue;
            }
            // A new edge held -> new closes a cycle iff `new` already
            // reaches `held` through recorded edges.
            if g.reaches(new, held) {
                let reverse_chain = g
                    .edges
                    .iter()
                    .find(|((from, to), _)| *from == new && g.reaches(*to, held))
                    .or_else(|| g.edges.iter().find(|((from, _), _)| *from == new))
                    .map(|(_, chain)| fmt_chain(chain))
                    .unwrap_or_else(|| "<chain unavailable>".to_string());
                let mut this_chain = held_now.clone();
                this_chain.push(new);
                panic!(
                    "lock-order witness: cycle detected!\n  acquiring lock class {}:{}:{} while \
                     holding {}\n  this acquisition chain:    {}\n  conflicting chain (recorded \
                     earlier): {}\n  (one of these orders must change, or one lock must be \
                     constructed with Mutex::unwitnessed)",
                    new.0,
                    new.1,
                    new.2,
                    fmt_chain(&held_now),
                    fmt_chain(&this_chain),
                    reverse_chain,
                );
            }
            let mut chain = held_now.clone();
            chain.push(new);
            g.edges.insert(edge, chain);
            g.adj.entry(held).or_default().push(new);
        }
        HELD.with(|h| h.borrow_mut().push(new));
    }

    pub(super) fn on_release(site: Site) {
        let k = key(site);
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Guards may be dropped out of LIFO order; remove the most
            // recent matching acquisition.
            if let Some(pos) = held.iter().rposition(|&x| x == k) {
                held.remove(pos);
            }
        });
    }
}

/// Record an acquisition of a lock of class `site` by the current thread;
/// panics if this acquisition order closes a cycle in the global graph.
/// No-op in release builds and under `cfg(masort_check)`.
#[inline]
pub fn on_acquire(site: Option<Site>) {
    #[cfg(all(debug_assertions, not(masort_check)))]
    if let Some(site) = site {
        imp::on_acquire(site);
    }
    #[cfg(not(all(debug_assertions, not(masort_check))))]
    let _ = site;
}

/// Record the release of a lock of class `site` by the current thread.
/// No-op in release builds and under `cfg(masort_check)`.
#[inline]
pub fn on_release(site: Option<Site>) {
    #[cfg(all(debug_assertions, not(masort_check)))]
    if let Some(site) = site {
        imp::on_release(site);
    }
    #[cfg(not(all(debug_assertions, not(masort_check))))]
    let _ = site;
}
