//! The masort synchronisation shim.
//!
//! Every masort crate uses these types instead of `std::sync::{Mutex,
//! RwLock, Condvar}`, `std::sync::mpsc` and `std::thread` spawning (the
//! `lint-sync` binary enforces this). The shim has three build modes:
//!
//! - **release** (default): transparent wrappers over `std` with
//!   poison-recovering `lock()`; compiles away to nothing.
//! - **debug** (default with `debug_assertions`): additionally feeds every
//!   acquisition to the [lock-order witness](crate::witness), which panics
//!   on the first cyclic lock ordering. A lock can opt out with
//!   [`Mutex::unwitnessed`] / [`RwLock::unwitnessed`].
//! - **`--cfg masort_check`**: the types are the instrumented primitives of
//!   [`crate::checked`], driven by the deterministic
//!   [interleaving explorer](crate::explore).
//!
//! API deltas from `std`, in every mode: `lock()`/`read()`/`write()` return
//! guards directly (poison is always recovered — a panicked holder reports
//! its panic but never cascades an `unwrap` failure into other threads), and
//! `Condvar::wait_timeout` returns `(guard, timed_out: bool)`.

#[cfg(masort_check)]
pub use crate::checked::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(not(masort_check))]
pub use self::default_impl::{
    Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Atomic types. In default builds these are `std`'s atomics re-exported;
/// under `cfg(masort_check)` every operation is a scheduler yield point.
pub mod atomic {
    #[cfg(masort_check)]
    pub use crate::checked::atomic::{
        AtomicBool, AtomicI64, AtomicU32, AtomicU64, AtomicUsize, Ordering,
    };
    // check-exempt: this module *is* the shim's std escape hatch.
    #[cfg(not(masort_check))]
    pub use std::sync::atomic::*;
}

/// Multi-producer single-consumer channels. `std::sync::mpsc` re-exported
/// in default builds; the checked channels under `cfg(masort_check)`.
pub mod mpsc {
    #[cfg(masort_check)]
    pub use crate::checked::mpsc::*;
    // check-exempt: this module *is* the shim's std escape hatch.
    #[cfg(not(masort_check))]
    pub use std::sync::mpsc::*;
}

/// Thread spawning and sleeping. `std::thread` re-exported in default
/// builds; cooperative tasks under `cfg(masort_check)`. Note that
/// `std::thread::scope` is only available in default builds — scoped
/// threads cannot become explorer tasks (models must avoid them, e.g. by
/// sorting with `cpu_threads = 1`).
pub mod thread {
    #[cfg(masort_check)]
    pub use crate::checked::thread::*;
    #[cfg(not(masort_check))]
    pub use std::thread::*;
}

#[cfg(not(masort_check))]
mod default_impl {
    use crate::witness;
    use std::mem::ManuallyDrop;
    use std::time::Duration;

    #[cfg(debug_assertions)]
    type SiteField = Option<witness::Site>;
    #[cfg(not(debug_assertions))]
    type SiteField = ();

    #[cfg(debug_assertions)]
    #[inline]
    #[track_caller]
    fn here() -> SiteField {
        Some(std::panic::Location::caller())
    }
    #[cfg(not(debug_assertions))]
    #[inline]
    fn here() -> SiteField {}

    #[cfg(debug_assertions)]
    #[inline]
    fn no_site() -> SiteField {
        None
    }
    #[cfg(not(debug_assertions))]
    #[inline]
    fn no_site() -> SiteField {}

    #[cfg(debug_assertions)]
    #[inline]
    fn as_site(s: SiteField) -> Option<witness::Site> {
        s
    }
    #[cfg(not(debug_assertions))]
    #[inline]
    fn as_site(_s: SiteField) -> Option<witness::Site> {
        None
    }

    /// A mutual-exclusion lock: `std::sync::Mutex` plus poison recovery and
    /// (in debug builds) the lock-order witness keyed by construction site.
    pub struct Mutex<T: ?Sized> {
        site: SiteField,
        inner: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Create a mutex whose lock class is this construction site.
        #[cfg_attr(debug_assertions, track_caller)]
        pub fn new(t: T) -> Self {
            Mutex {
                site: here(),
                inner: std::sync::Mutex::new(t),
            }
        }

        /// Create a mutex exempt from the lock-order witness. Use only for
        /// locks with a documented external ordering argument (see the
        /// README's exemption policy).
        pub fn unwitnessed(t: T) -> Self {
            Mutex {
                site: no_site(),
                inner: std::sync::Mutex::new(t),
            }
        }

        /// Consume the mutex and return its inner value, recovering poison.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquire the lock; poison is recovered, never propagated.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            witness::on_acquire(as_site(self.site));
            let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            MutexGuard {
                site: self.site,
                inner: ManuallyDrop::new(g),
            }
        }

        /// Try to acquire the lock without blocking; `None` if contended.
        pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
            match self.inner.try_lock() {
                Ok(g) => {
                    witness::on_acquire(as_site(self.site));
                    Some(MutexGuard {
                        site: self.site,
                        inner: ManuallyDrop::new(g),
                    })
                }
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    witness::on_acquire(as_site(self.site));
                    Some(MutexGuard {
                        site: self.site,
                        inner: ManuallyDrop::new(p.into_inner()),
                    })
                }
                Err(std::sync::TryLockError::WouldBlock) => None,
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[cfg_attr(debug_assertions, track_caller)]
        fn default() -> Self {
            Mutex::new(T::default())
        }
    }

    impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Mutex").finish_non_exhaustive()
        }
    }

    /// RAII guard for [`Mutex`].
    pub struct MutexGuard<'a, T: ?Sized> {
        site: SiteField,
        inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    }

    impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            witness::on_release(as_site(self.site));
            // SAFETY: `inner` is dropped exactly once, here; the only other
            // consumer is `into_std`, which forgets `self`.
            unsafe { ManuallyDrop::drop(&mut self.inner) };
        }
    }

    impl<'a, T: ?Sized> MutexGuard<'a, T> {
        /// Split the guard for a condvar wait; records the witness release.
        fn into_std(mut self) -> (SiteField, std::sync::MutexGuard<'a, T>) {
            let site = self.site;
            witness::on_release(as_site(site));
            // SAFETY: `self` is forgotten immediately below, so `Drop`
            // cannot run and double-drop `inner`.
            let g = unsafe { ManuallyDrop::take(&mut self.inner) };
            std::mem::forget(self);
            (site, g)
        }
    }

    /// A condition variable over the shim's [`Mutex`].
    pub struct Condvar {
        inner: std::sync::Condvar,
    }

    impl Condvar {
        /// Create a new condition variable.
        pub const fn new() -> Self {
            Condvar {
                inner: std::sync::Condvar::new(),
            }
        }

        /// Release `guard`, wait for a notification, re-acquire the lock.
        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
            let (site, g) = guard.into_std();
            let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
            witness::on_acquire(as_site(site));
            MutexGuard {
                site,
                inner: ManuallyDrop::new(g),
            }
        }

        /// Like [`Condvar::wait`] with a timeout; the second value is
        /// `true` when the wait timed out.
        pub fn wait_timeout<'a, T>(
            &self,
            guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> (MutexGuard<'a, T>, bool) {
            let (site, g) = guard.into_std();
            let (g, to) = self
                .inner
                .wait_timeout(g, dur)
                .unwrap_or_else(|e| e.into_inner());
            witness::on_acquire(as_site(site));
            (
                MutexGuard {
                    site,
                    inner: ManuallyDrop::new(g),
                },
                to.timed_out(),
            )
        }

        /// Wake one waiter.
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// Wake every waiter.
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Condvar::new()
        }
    }

    impl std::fmt::Debug for Condvar {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }

    /// A reader–writer lock: `std::sync::RwLock` plus poison recovery and
    /// (in debug builds) the lock-order witness.
    pub struct RwLock<T: ?Sized> {
        site: SiteField,
        inner: std::sync::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Create a lock whose class is this construction site.
        #[cfg_attr(debug_assertions, track_caller)]
        pub fn new(t: T) -> Self {
            RwLock {
                site: here(),
                inner: std::sync::RwLock::new(t),
            }
        }

        /// Create a lock exempt from the lock-order witness.
        pub fn unwitnessed(t: T) -> Self {
            RwLock {
                site: no_site(),
                inner: std::sync::RwLock::new(t),
            }
        }

        /// Consume the lock and return its inner value, recovering poison.
        pub fn into_inner(self) -> T {
            self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Acquire shared (read) access; poison recovered.
        pub fn read(&self) -> RwLockReadGuard<'_, T> {
            witness::on_acquire(as_site(self.site));
            let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
            RwLockReadGuard {
                site: self.site,
                inner: g,
            }
        }

        /// Acquire exclusive (write) access; poison recovered.
        pub fn write(&self) -> RwLockWriteGuard<'_, T> {
            witness::on_acquire(as_site(self.site));
            let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
            RwLockWriteGuard {
                site: self.site,
                inner: g,
            }
        }

        /// Mutable access without locking (requires exclusive ownership).
        pub fn get_mut(&mut self) -> &mut T {
            self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
        }
    }

    impl<T: Default> Default for RwLock<T> {
        #[cfg_attr(debug_assertions, track_caller)]
        fn default() -> Self {
            RwLock::new(T::default())
        }
    }

    impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("RwLock").finish_non_exhaustive()
        }
    }

    /// Shared-access RAII guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized> {
        site: SiteField,
        inner: std::sync::RwLockReadGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            witness::on_release(as_site(self.site));
        }
    }

    /// Exclusive-access RAII guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized> {
        site: SiteField,
        inner: std::sync::RwLockWriteGuard<'a, T>,
    }

    impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            witness::on_release(as_site(self.site));
        }
    }
}
