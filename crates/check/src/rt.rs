//! The cooperative scheduling runtime behind the deterministic interleaving
//! explorer.
//!
//! One *schedule* executes a model closure on a set of real OS threads
//! ("tasks") of which **exactly one runs at a time**: every instrumented
//! shim operation (lock, channel, atomic, spawn, sleep) is a *yield point*
//! where the scheduler picks the next runnable task from a deterministic
//! choice source — a seeded random walk or a replayed/enumerated choice
//! vector. Because the choice source is the only source of nondeterminism,
//! any failing schedule replays exactly from its seed.
//!
//! The runtime detects deadlocks structurally: when no task is runnable and
//! no timed waiter remains, the schedule fails with every task's block site.
//! Timed waits (`wait_timeout`, `recv_timeout`) never fire while any task
//! can still run — logical time only advances when the system is otherwise
//! idle, which keeps schedules deterministic without modelling real clocks.

use std::cell::RefCell;
use std::panic::Location;
// check-exempt: the runtime is the instrumentation layer itself.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Source location of the shim operation a task last executed or is blocked
/// at; used in deadlock reports.
pub(crate) type Site = &'static Location<'static>;

/// Allocate a process-unique resource id (one per lock / condvar / channel
/// endpoint / join handle) for the runtime's wait queues.
pub(crate) fn next_res_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// How a blocked task was woken.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Wake {
    /// A peer released the resource / sent a notification.
    Notified,
    /// The system went idle and this timed waiter's timeout fired.
    TimedOut,
}

/// Deterministic source of scheduling choices for one schedule.
#[derive(Clone, Debug)]
pub(crate) enum ChoiceSrc {
    /// Seeded random walk (xorshift64*).
    Random(u64),
    /// Fixed prefix of choices (bounded-exhaustive enumeration / replay);
    /// beyond the prefix, the first runnable task is chosen.
    Fixed(Vec<usize>),
}

impl ChoiceSrc {
    fn choose(&mut self, n: usize, pos: usize) -> usize {
        debug_assert!(n > 0);
        match self {
            ChoiceSrc::Random(state) => {
                // xorshift64*: deterministic, dependency-free, well mixed.
                let mut x = *state;
                x ^= x >> 12;
                x ^= x << 25;
                x ^= x >> 27;
                *state = x;
                (x.wrapping_mul(0x2545F4914F6CDD1D) >> 32) as usize % n
            }
            ChoiceSrc::Fixed(v) => v.get(pos).map_or(0, |&c| c.min(n - 1)),
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked { res: u64, timed: bool },
    Done,
}

struct Task {
    name: String,
    status: Status,
    wake: Wake,
    site: Option<Site>,
}

struct RtState {
    tasks: Vec<Task>,
    current: usize,
    live: usize,
    steps: usize,
    max_steps: usize,
    choices: ChoiceSrc,
    trace: Vec<(usize, usize)>,
    failure: Option<String>,
    aborting: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One schedule's scheduler: shared by all of the schedule's task threads.
pub(crate) struct Rt {
    m: Mutex<RtState>,
    cv: Condvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Rt>, usize)>> = const { RefCell::new(None) };
}

fn ctx() -> Option<(Arc<Rt>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// True when the calling thread is a task of an active schedule — i.e. the
/// instrumented primitives should take their cooperative path.
pub(crate) fn in_model() -> bool {
    CTX.with(|c| c.borrow().is_some())
}

/// Panic payload used to unwind tasks when a schedule aborts; recognised (and
/// swallowed) by the task wrapper so it never masks the original failure.
struct AbortUnwind;

fn abort_unwind() -> ! {
    std::panic::panic_any(AbortUnwind);
}

/// Outcome of one fully-executed schedule.
pub(crate) struct ScheduleOutcome {
    /// The `(chosen, runnable_count)` decisions taken, in order.
    pub trace: Vec<(usize, usize)>,
    /// First failure observed (panic, deadlock, step-bound), if any.
    pub failure: Option<String>,
}

impl Rt {
    fn new(choices: ChoiceSrc, max_steps: usize) -> Arc<Rt> {
        Arc::new(Rt {
            m: Mutex::new(RtState {
                tasks: Vec::new(),
                current: 0,
                live: 0,
                steps: 0,
                max_steps,
                choices,
                trace: Vec::new(),
                failure: None,
                aborting: false,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        })
    }

    fn lock(&self) -> MutexGuard<'_, RtState> {
        self.m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Pick the next task to run. Called with the state lock held, after the
    /// calling task has updated its own status. Handles idle-time timeouts,
    /// deadlock detection and the step bound.
    fn pick_next(&self, st: &mut RtState) {
        if st.aborting || st.live == 0 {
            return;
        }
        st.steps += 1;
        if st.steps > st.max_steps {
            self.fail(
                st,
                format!("schedule exceeded the step bound of {}", st.max_steps),
            );
            return;
        }
        let runnable: Vec<usize> = st
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::Runnable)
            .map(|(i, _)| i)
            .collect();
        if runnable.is_empty() {
            // Idle: logical time advances — fire the first timed waiter.
            if let Some(i) = st
                .tasks
                .iter()
                .position(|t| matches!(t.status, Status::Blocked { timed: true, .. }))
            {
                st.tasks[i].status = Status::Runnable;
                st.tasks[i].wake = Wake::TimedOut;
                st.current = i;
                return;
            }
            let report: Vec<String> = st
                .tasks
                .iter()
                .filter(|t| t.status != Status::Done)
                .map(|t| {
                    format!(
                        "  task '{}' blocked at {}",
                        t.name,
                        t.site.map_or("<unknown>".into(), |s| s.to_string())
                    )
                })
                .collect();
            self.fail(st, format!("deadlock detected:\n{}", report.join("\n")));
            return;
        }
        let pos = st.trace.len();
        let c = st.choices.choose(runnable.len(), pos);
        st.trace.push((c, runnable.len()));
        st.current = runnable[c];
    }

    /// Record the first failure and abort the schedule: every task wakes and
    /// unwinds at its next runtime interaction.
    fn fail(&self, st: &mut RtState, msg: String) {
        if st.failure.is_none() {
            st.failure = Some(msg);
        }
        st.aborting = true;
        for t in &mut st.tasks {
            if matches!(t.status, Status::Blocked { .. }) {
                t.status = Status::Runnable;
            }
        }
    }

    /// Hand the token to the next task and wait until this task is scheduled
    /// again (or the schedule aborts).
    fn switch(&self, mut st: MutexGuard<'_, RtState>, me: usize) {
        self.pick_next(&mut st);
        self.cv.notify_all();
        loop {
            if st.aborting {
                drop(st);
                abort_unwind();
            }
            if st.current == me && st.tasks[me].status == Status::Runnable {
                return;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// A scheduling choice point: if the calling thread is a task of an active
/// schedule, hand the token to the scheduler; otherwise do nothing.
#[inline]
pub(crate) fn yield_point(site: Option<Site>) {
    let Some((rt, me)) = ctx() else { return };
    let mut st = rt.lock();
    if st.aborting {
        drop(st);
        abort_unwind();
    }
    st.tasks[me].site = site;
    rt.switch(st, me);
}

/// Block the calling task on `res` until a peer wakes it (or, for timed
/// waits, until the system goes idle). Panics if called off-task.
pub(crate) fn block_on(res: u64, timed: bool, site: Option<Site>) -> Wake {
    let (rt, me) = ctx().expect("block_on called outside a schedule");
    let mut st = rt.lock();
    if st.aborting {
        drop(st);
        abort_unwind();
    }
    st.tasks[me].site = site;
    st.tasks[me].status = Status::Blocked { res, timed };
    rt.switch(st, me);
    let st = rt.lock();
    st.tasks[me].wake
}

/// Make every task blocked on `res` runnable. No-op off-task (an unmanaged
/// thread cannot wake tasks — models must confine shared state to tasks).
pub(crate) fn wake_all(res: u64) {
    let Some((rt, _)) = ctx() else { return };
    let mut st = rt.lock();
    for t in &mut st.tasks {
        if t.status == (Status::Blocked { res, timed: false })
            || t.status == (Status::Blocked { res, timed: true })
        {
            t.status = Status::Runnable;
            t.wake = Wake::Notified;
        }
    }
}

/// Make the first task blocked on `res` runnable (condvar `notify_one`).
pub(crate) fn wake_one(res: u64) {
    let Some((rt, _)) = ctx() else { return };
    let mut st = rt.lock();
    for t in &mut st.tasks {
        if matches!(t.status, Status::Blocked { res: r, .. } if r == res) {
            t.status = Status::Runnable;
            t.wake = Wake::Notified;
            return;
        }
    }
}

/// Record a task panic as the schedule's failure and abort the schedule.
pub(crate) fn note_panic(name: &str, payload: &(dyn std::any::Any + Send)) {
    let Some((rt, _)) = ctx() else { return };
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    let mut st = rt.lock();
    let msg = format!("task '{name}' panicked: {msg}");
    rt.fail(&mut st, msg);
    rt.cv.notify_all();
}

/// Spawn a new task running `f`. The spawner keeps the token; the spawn is
/// followed by a yield point at the caller (in the shim layer). Panics
/// inside `f` are the caller's business — wrappers in the shim layer route
/// assertion failures to [`note_panic`].
pub(crate) fn spawn_task(name: String, f: Box<dyn FnOnce() + Send>) {
    let (rt, _) = ctx().expect("spawn_task called outside a schedule");
    spawn_on(&rt, name, f, false);
}

fn spawn_on(rt: &Arc<Rt>, name: String, f: Box<dyn FnOnce() + Send>, root: bool) {
    let id = {
        let mut st = rt.lock();
        st.tasks.push(Task {
            name: name.clone(),
            status: Status::Runnable,
            wake: Wake::Notified,
            site: None,
        });
        st.live += 1;
        if root {
            st.current = st.tasks.len() - 1;
        }
        st.tasks.len() - 1
    };
    let rt2 = Arc::clone(rt);
    let handle = std::thread::Builder::new()
        .name(format!("masort-check-{name}"))
        .spawn(move || {
            CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&rt2), id)));
            // Wait for the first time the scheduler picks this task.
            let started = {
                let mut st = rt2.lock();
                loop {
                    if st.aborting {
                        break false;
                    }
                    if st.current == id && st.tasks[id].status == Status::Runnable {
                        break true;
                    }
                    st = rt2.cv.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            if started {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
                if let Err(payload) = r {
                    if !payload.is::<AbortUnwind>() {
                        note_panic(&name, payload.as_ref());
                    }
                }
            }
            // Exit protocol: mark done, hand the token onwards, wake the
            // harness if this was the last live task.
            let mut st = rt2.lock();
            st.tasks[id].status = Status::Done;
            st.live -= 1;
            if st.live > 0 {
                rt2.pick_next(&mut st);
            }
            rt2.cv.notify_all();
        })
        .expect("spawning a schedule task thread failed");
    rt.lock().os_handles.push(handle);
}

/// Execute one complete schedule of `model` under `choices` and return the
/// choice trace plus the first failure, if any. Blocks the calling (harness)
/// thread until every task thread has exited.
pub(crate) fn run_schedule(
    choices: ChoiceSrc,
    max_steps: usize,
    model: Box<dyn FnOnce() + Send>,
) -> ScheduleOutcome {
    let rt = Rt::new(choices, max_steps);
    spawn_on(&rt, "root".to_string(), model, true);
    let handles: Vec<std::thread::JoinHandle<()>> = {
        let mut st = rt.lock();
        while st.live > 0 {
            st = rt.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        std::mem::take(&mut st.os_handles)
    };
    for h in handles {
        let _ = h.join();
    }
    let mut st = rt.lock();
    ScheduleOutcome {
        trace: std::mem::take(&mut st.trace),
        failure: st.failure.take(),
    }
}
