//! The raw-sync lint: a dependency-free source scanner that flags direct
//! use of `std::sync::{Mutex, RwLock, Condvar}` or `std::sync::mpsc`
//! outside the shim, so all of masort's blocking synchronisation stays
//! visible to the lock-order witness and the interleaving explorer.
//!
//! Skipped: `crates/check/` itself (it *implements* the shim), `vendor/`,
//! `target/`, `tests/` directories, and any line — or any multi-line `use`
//! group containing a line — carrying a `check-exempt:` marker comment.
//! `std::sync::Arc`, `OnceLock`, atomics and `std::thread` are allowed.

use std::fs;
use std::path::{Path, PathBuf};

/// One raw-sync occurrence.
#[derive(Clone, Debug)]
pub struct Finding {
    /// File containing the occurrence.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The offending source line, trimmed.
    pub text: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: raw std::sync primitive: `{}` (route it through masort_core::sync, or mark \
             the line `// check-exempt: <reason>`)",
            self.file.display(),
            self.line,
            self.text
        )
    }
}

const BANNED: [&str; 4] = ["Mutex", "RwLock", "Condvar", "mpsc"];

/// Directory names never descended into.
fn skip_dir(name: &str) -> bool {
    matches!(name, "target" | "vendor" | "tests" | ".git" | "check")
}

/// True when `line` (comments already stripped) names a banned primitive
/// through `std::sync::`.
fn line_flagged(line: &str) -> bool {
    let mut rest = line;
    while let Some(pos) = rest.find("std::sync::") {
        let after = &rest[pos + "std::sync::".len()..];
        if BANNED.iter().any(|b| {
            after.starts_with(b)
                && !after[b.len()..]
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
        }) {
            return true;
        }
        // A brace group on this line: `use std::sync::{Arc, Mutex};`.
        if let Some(body) = after.strip_prefix('{') {
            let group = body.split('}').next().unwrap_or("");
            if group_flagged(group) {
                return true;
            }
        }
        rest = after;
    }
    false
}

/// True when the body of a `use std::sync::{ ... }` group names a banned
/// primitive as a path segment.
fn group_flagged(group: &str) -> bool {
    group
        .split(|c: char| !(c.is_alphanumeric() || c == '_'))
        .any(|tok| BANNED.contains(&tok))
}

/// Strip a trailing `// ...` comment (good enough for lint purposes; string
/// literals containing `//` may hide code, which this lint tolerates).
fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

/// Scan one Rust source file for raw-sync occurrences.
pub fn scan_file(path: &Path) -> Vec<Finding> {
    let Ok(src) = fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut findings = Vec::new();
    let mut group: Option<(usize, String, bool)> = None; // (start line, text, exempt)
    for (idx, raw) in src.lines().enumerate() {
        let exempt = raw.contains("check-exempt:");
        let line = strip_comment(raw);
        if let Some((start, text, was_exempt)) = group.take() {
            let text = format!("{text} {}", line.trim());
            let exempt = was_exempt || exempt;
            if line.contains(';') {
                if !exempt && line_flagged(&text) {
                    findings.push(Finding {
                        file: path.to_path_buf(),
                        line: start,
                        text: text.trim().to_string(),
                    });
                }
            } else {
                group = Some((start, text, exempt));
            }
            continue;
        }
        let trimmed = line.trim_start();
        let is_use = trimmed.starts_with("use ") || trimmed.starts_with("pub use ");
        if is_use && trimmed.contains("std::sync::") && !line.contains(';') {
            // Multi-line use group: accumulate until the terminating `;`.
            group = Some((idx + 1, line.trim().to_string(), exempt));
            continue;
        }
        if !exempt && line_flagged(line) {
            findings.push(Finding {
                file: path.to_path_buf(),
                line: idx + 1,
                text: raw.trim().to_string(),
            });
        }
    }
    findings
}

/// Recursively scan every `.rs` file under `root`, honouring the skip list.
pub fn scan_tree(root: &Path) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        let mut entries: Vec<_> = entries.flatten().collect();
        entries.sort_by_key(|e| e.path());
        for entry in entries {
            let path = entry.path();
            let Ok(ft) = entry.file_type() else { continue };
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if ft.is_dir() {
                if !skip_dir(&name) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                findings.extend(scan_file(&path));
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}
