//! The deterministic interleaving explorer: run a model closure under many
//! schedules, deterministically, and replay any failure from a printed seed.
//!
//! A *model* is a plain closure that builds some shared state and spawns
//! threads through the shim (`masort_core::sync::thread`), all of which
//! become cooperative tasks of a seeded scheduler. Two modes:
//!
//! - [`explore_random`]: a seeded random walk over schedules. Each schedule
//!   gets its own derived seed; on failure that seed is printed and
//!   [`replay`] reproduces the exact interleaving.
//! - [`explore_exhaustive`]: bounded-exhaustive enumeration of scheduling
//!   choice prefixes (depth-first), for small models where full coverage of
//!   the first divergences matters more than raw schedule count.
//!
//! Failures are panics in any task, structural deadlocks (no runnable task
//! and no timed waiter), or exceeding the per-schedule step bound.

use crate::rt::{self, ChoiceSrc};
use std::sync::Arc;

/// Tuning knobs for an exploration run.
#[derive(Clone, Debug)]
pub struct Options {
    /// Number of schedules to run (random walks, or the enumeration bound
    /// for the exhaustive mode).
    pub schedules: usize,
    /// Base seed for the random walk; each schedule derives its own seed
    /// from this (the *derived* seed is what a failure report prints).
    pub seed: u64,
    /// Per-schedule bound on scheduling decisions, to catch livelocks.
    pub max_steps: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            schedules: 100,
            seed: 0x5EED_CAFE,
            max_steps: 1_000_000,
        }
    }
}

/// Successful exploration summary.
#[derive(Clone, Copy, Debug)]
pub struct Explored {
    /// Number of schedules executed without failure.
    pub schedules: usize,
}

/// A failing schedule, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The derived seed of the failing random walk (`None` for exhaustive
    /// mode — use [`Failure::trace`] with [`replay_trace`] instead).
    pub seed: Option<u64>,
    /// Index of the failing schedule within the run.
    pub schedule: usize,
    /// Human-readable failure (panic message, deadlock report, step bound).
    pub message: String,
    /// The scheduling choices taken, reproducible via [`replay_trace`].
    pub trace: Vec<usize>,
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.seed {
            Some(seed) => write!(
                f,
                "schedule {} failed (replay with seed {seed:#018x}): {}",
                self.schedule, self.message
            ),
            None => write!(
                f,
                "schedule {} failed (replay trace {:?}): {}",
                self.schedule, self.trace, self.message
            ),
        }
    }
}

impl std::error::Error for Failure {}

/// splitmix64: derive well-separated per-schedule seeds from a base seed.
fn derive_seed(base: u64, i: u64) -> u64 {
    let mut z = base.wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        0x9E37_79B9_7F4A_7C15
    } else {
        z
    }
}

fn run_one(
    choices: ChoiceSrc,
    opts: &Options,
    model: &Arc<dyn Fn() + Send + Sync>,
) -> rt::ScheduleOutcome {
    let m = Arc::clone(model);
    rt::run_schedule(choices, opts.max_steps, Box::new(move || m()))
}

/// Run `opts.schedules` seeded random-walk schedules of `model`. On failure
/// the derived seed is printed to stderr and returned for [`replay`].
pub fn explore_random(
    opts: &Options,
    model: impl Fn() + Send + Sync + 'static,
) -> Result<Explored, Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    for i in 0..opts.schedules {
        let seed = derive_seed(opts.seed, i as u64);
        let out = run_one(ChoiceSrc::Random(seed), opts, &model);
        if let Some(message) = out.failure {
            let failure = Failure {
                seed: Some(seed),
                schedule: i,
                message,
                trace: out.trace.iter().map(|&(c, _)| c).collect(),
            };
            eprintln!("masort-check: {failure}");
            return Err(failure);
        }
    }
    Ok(Explored {
        schedules: opts.schedules,
    })
}

/// Re-run a single schedule from a derived seed printed by a failing
/// [`explore_random`] run. Returns the failure if it reproduces.
pub fn replay(
    seed: u64,
    opts: &Options,
    model: impl Fn() + Send + Sync + 'static,
) -> Result<(), Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let out = run_one(ChoiceSrc::Random(seed), opts, &model);
    match out.failure {
        None => Ok(()),
        Some(message) => Err(Failure {
            seed: Some(seed),
            schedule: 0,
            message,
            trace: out.trace.iter().map(|&(c, _)| c).collect(),
        }),
    }
}

/// Re-run a single schedule from an explicit choice trace (as recorded in
/// [`Failure::trace`], e.g. by the exhaustive mode).
pub fn replay_trace(
    trace: Vec<usize>,
    opts: &Options,
    model: impl Fn() + Send + Sync + 'static,
) -> Result<(), Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let out = run_one(ChoiceSrc::Fixed(trace), opts, &model);
    match out.failure {
        None => Ok(()),
        Some(message) => Err(Failure {
            seed: None,
            schedule: 0,
            message,
            trace: out.trace.iter().map(|&(c, _)| c).collect(),
        }),
    }
}

/// Bounded-exhaustive exploration: depth-first enumeration of scheduling
/// choice prefixes, visiting at most `opts.schedules` schedules. Complete
/// for models whose decision trees fit in the bound; otherwise it covers
/// the earliest divergences first.
pub fn explore_exhaustive(
    opts: &Options,
    model: impl Fn() + Send + Sync + 'static,
) -> Result<Explored, Failure> {
    let model: Arc<dyn Fn() + Send + Sync> = Arc::new(model);
    let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
    let mut run = 0usize;
    while let Some(prefix) = stack.pop() {
        if run >= opts.schedules {
            break;
        }
        let depth = prefix.len();
        let out = run_one(ChoiceSrc::Fixed(prefix), opts, &model);
        if let Some(message) = out.failure {
            let failure = Failure {
                seed: None,
                schedule: run,
                message,
                trace: out.trace.iter().map(|&(c, _)| c).collect(),
            };
            eprintln!("masort-check: {failure}");
            return Err(failure);
        }
        run += 1;
        // Branch on every untried alternative at or beyond the prefix
        // frontier. Pushed in reverse so lower choices are explored first.
        let choices: Vec<usize> = out.trace.iter().map(|&(c, _)| c).collect();
        for pos in (depth..out.trace.len()).rev() {
            let (taken, n) = out.trace[pos];
            for alt in (taken + 1..n).rev() {
                let mut p = choices[..pos].to_vec();
                p.push(alt);
                stack.push(p);
            }
        }
    }
    Ok(Explored { schedules: run })
}
