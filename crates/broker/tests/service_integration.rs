//! The acceptance scenario for the broker subsystem: many concurrent sorts
//! through one [`SortService`] on a pool smaller than their combined demand,
//! under each arbitration policy, with pool resizes thrown in mid-flight.
//!
//! For every policy we verify that
//! * every output stream is a correctly sorted permutation of its input,
//! * every admitted job received at least its guaranteed minimum,
//! * at least one mid-flight reallocation occurred (observed through
//!   [`MemoryBudget::version`](masort_core::MemoryBudget::version) deltas
//!   surfaced as [`JobStats::reallocations`]),
//! * the service aggregates are consistent with what the tickets report.

use masort_broker::prelude::*;
use masort_core::verify::{is_key_permutation, is_sorted};
use masort_core::{SortConfig, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

const JOBS: usize = 10;
const POOL: usize = 24;

fn random_tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tuple::synthetic(rng.gen::<u64>(), 64))
        .collect()
}

fn cfg() -> SortConfig {
    // 512 B pages of 64 B tuples; each job would like 16 pages, so ten jobs
    // demand 160 pages against a 24-page pool — heavy contention.
    SortConfig::default()
        .with_page_size(512)
        .with_tuple_size(64)
        .with_memory_pages(16)
}

fn exercise_policy(policy: impl ArbitrationPolicy + 'static) {
    let policy_name = policy.name();
    let service = SortService::builder()
        .pool_pages(POOL)
        .workers(4)
        .policy(policy)
        .build();

    let inputs: Vec<Vec<Tuple>> = (0..JOBS)
        .map(|i| random_tuples(8_000, 0xACCE97 + i as u64))
        .collect();
    let tickets: Vec<SortTicket> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            service
                .submit(
                    SortRequest::tuples(cfg(), input.clone())
                        .priority(1 + (i as u32 % 3))
                        .min_pages(2),
                )
                .unwrap_or_else(|e| panic!("{policy_name}: submit {i} failed: {e}"))
        })
        .collect();

    // Shrink and re-grow the global pool while the sorts are in flight: every
    // live budget must move.
    std::thread::sleep(Duration::from_millis(5));
    service.resize_pool(12);
    std::thread::sleep(Duration::from_millis(5));
    service.resize_pool(36);

    let mut total_reallocations = 0u64;
    let mut total_delay_samples = 0usize;
    for (i, (ticket, input)) in tickets.into_iter().zip(&inputs).enumerate() {
        let report = ticket
            .wait()
            .unwrap_or_else(|e| panic!("{policy_name}: job {i} failed: {e}"));
        assert!(
            report.stats.initial_grant >= 2,
            "{policy_name}: job {i} admitted below its guaranteed minimum \
             (got {})",
            report.stats.initial_grant
        );
        total_reallocations += report.stats.reallocations;
        total_delay_samples += report.stats.delay_samples;

        let streamed: Vec<Tuple> = report
            .into_stream()
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("{policy_name}: job {i} stream failed: {e}"));
        assert!(
            is_sorted(&streamed),
            "{policy_name}: job {i} output not sorted"
        );
        assert!(
            is_key_permutation(input, &streamed),
            "{policy_name}: job {i} lost or duplicated tuples"
        );
    }

    assert!(
        total_reallocations >= 1,
        "{policy_name}: no job observed a mid-flight reallocation \
         ({total_delay_samples} delay samples)"
    );

    let stats = service.shutdown();
    assert_eq!(stats.submitted, JOBS as u64, "{policy_name}");
    assert_eq!(stats.completed, JOBS as u64, "{policy_name}");
    assert_eq!(stats.failed, 0, "{policy_name}");
    assert_eq!(stats.resizes, 2, "{policy_name}");
    assert_eq!(
        stats.total_reallocations, total_reallocations,
        "{policy_name}"
    );
    assert!(
        stats.rebalances >= (2 * JOBS + 2) as u64,
        "{policy_name}: every admission, completion and resize rebalances \
         (got {})",
        stats.rebalances
    );
    assert!(
        stats.peak_live >= 2,
        "{policy_name}: sorts never overlapped"
    );
}

#[test]
fn concurrent_sorts_under_equal_share() {
    exercise_policy(EqualShare);
}

#[test]
fn concurrent_sorts_under_priority_weighted() {
    exercise_policy(PriorityWeighted);
}

#[test]
fn concurrent_sorts_under_min_guarantee() {
    exercise_policy(MinGuarantee);
}

#[test]
fn mixed_storage_and_priorities_under_contention() {
    // Same contention scenario, but half the jobs spill to temporary files
    // and priorities span the full range — the broker must not care.
    let service = SortService::builder()
        .pool_pages(20)
        .workers(4)
        .policy(PriorityWeighted)
        .build();
    let inputs: Vec<Vec<Tuple>> = (0..8)
        .map(|i| random_tuples(4_000, 0xD15C + i as u64))
        .collect();
    let tickets: Vec<SortTicket> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let mut req = SortRequest::tuples(cfg(), input.clone())
                .priority(1 + i as u32)
                .min_pages(2);
            if i % 2 == 0 {
                req = req.spill_to_temp_dir();
            }
            service.submit(req).unwrap()
        })
        .collect();
    for (i, (ticket, input)) in tickets.into_iter().zip(&inputs).enumerate() {
        let sorted = ticket.wait().unwrap().into_sorted_vec().unwrap();
        assert!(is_sorted(&sorted), "job {i}");
        assert!(is_key_permutation(input, &sorted), "job {i}");
    }
    let stats = service.shutdown();
    assert_eq!(stats.completed, 8);
}
