//! Stress test: a storm of concurrent submissions racing with pool resizes.
//!
//! CI runs this in release mode (`cargo test --release -p masort-broker
//! --test stress`); in debug it runs a reduced load so `cargo test -q` stays
//! fast.

use masort_broker::prelude::*;
use masort_core::verify::{is_key_permutation, is_sorted};
use masort_core::{SortConfig, SortError, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[cfg(debug_assertions)]
const JOBS: usize = 24;
#[cfg(not(debug_assertions))]
const JOBS: usize = 96;

#[test]
fn submission_storm_with_concurrent_resizes() {
    let service = Arc::new(
        SortService::builder()
            .pool_pages(32)
            .workers(6)
            .policy(PriorityWeighted)
            .build(),
    );

    // A "buffer manager" thread wobbles the pool the whole time.
    let stop = Arc::new(AtomicBool::new(false));
    let resizer = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let sizes = [16usize, 48, 20, 64, 14, 40];
            let mut i = 0;
            while !stop.load(Ordering::Relaxed) {
                service.resize_pool(sizes[i % sizes.len()]);
                i += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            // Leave the pool generous so queued work drains quickly.
            service.resize_pool(64);
            i
        })
    };

    // Several submitter threads race their submissions.
    let mut submitters = Vec::new();
    for t in 0..3u64 {
        let service = Arc::clone(&service);
        submitters.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x57AE55 + t);
            let mut results = Vec::new();
            for j in 0..JOBS / 3 {
                let n = rng.gen_range(500usize..4_000);
                let input: Vec<Tuple> = (0..n)
                    .map(|_| Tuple::synthetic(rng.gen::<u64>(), 64))
                    .collect();
                let cfg = SortConfig::default()
                    .with_page_size(512)
                    .with_tuple_size(64)
                    .with_memory_pages(rng.gen_range(4usize..16));
                let ticket = service
                    .submit(
                        SortRequest::tuples(cfg, input.clone())
                            .priority(rng.gen_range(1u32..10))
                            .min_pages(rng.gen_range(1usize..4)),
                    )
                    .unwrap_or_else(|e| panic!("submitter {t} job {j}: {e}"));
                results.push((input, ticket));
            }
            // Redeem in submission order; every sort must be correct.
            let mut starved = 0usize;
            for (i, (input, ticket)) in results.into_iter().enumerate() {
                match ticket.wait() {
                    Ok(report) => {
                        let sorted = report.into_sorted_vec().unwrap();
                        assert!(is_sorted(&sorted), "submitter {t} job {i}");
                        assert!(is_key_permutation(&input, &sorted), "submitter {t} job {i}");
                    }
                    // A resize can legitimately doom a queued request whose
                    // minimum no longer fits; nothing else may fail.
                    Err(SortError::BudgetStarved { .. }) => starved += 1,
                    Err(e) => panic!("submitter {t} job {i}: unexpected error {e}"),
                }
            }
            starved
        }));
    }

    let mut total_starved = 0usize;
    for s in submitters {
        total_starved += s.join().expect("submitter panicked");
    }
    stop.store(true, Ordering::Relaxed);
    let resizes = resizer.join().expect("resizer panicked");
    assert!(resizes >= 2, "the pool never actually wobbled");

    let service = Arc::into_inner(service).expect("all clones joined");
    let stats = service.shutdown();
    let jobs = (JOBS / 3 * 3) as u64;
    assert_eq!(stats.submitted, jobs);
    assert_eq!(stats.completed + stats.rejected, jobs);
    assert_eq!(stats.rejected, total_starved as u64);
    assert_eq!(stats.failed, 0);
    assert!(
        stats.rebalances as usize >= 2 * (jobs as usize - total_starved),
        "every admission and completion must rebalance"
    );
}
