//! The concurrent sort service: submit many sorts, run them on a bounded
//! worker pool against one globally brokered page pool.

use crate::admission::{AdmissionQueue, QueuedRequest};
use crate::broker::MemoryBroker;
use crate::policy::{ArbitrationPolicy, EqualShare, JobDemand};
use crate::stats::{JobStats, ServiceStats};
use crate::ticket::{JobId, JobReport, SortTicket, TicketShared};
use masort_core::sync::thread::{self, JoinHandle};
use masort_core::sync::{Condvar, Mutex, MutexGuard};
use masort_core::{
    BlockReadJob, DelaySample, FileStore, InputSource, IoPool, MemStore, MemoryBudget, Page,
    RealEnv, RunId, RunStore, SortConfig, SortError, SortJob, SortResult, Tuple, VecSource,
};
use masort_trace::{EventKind, SpanId, Trace};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The trace span a job's events are emitted on. Offset by one so job 0 does
/// not collide with [`SpanId::SERVICE`]; the server and CLI use the same
/// mapping to pull one job's timeline out of a service-wide recorder.
pub fn job_span(job: JobId) -> SpanId {
    SpanId(job + 1)
}

/// Bucket bounds (seconds) for the service's latency histograms
/// (`job_response_seconds`, `job_queue_wait_seconds`, `io_stall_seconds`).
const LATENCY_BUCKETS: &[f64] = &[0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0, 60.0];

/// Bucket bounds (tuples/second) for `merge_tuples_per_sec`.
const THROUGHPUT_BUCKETS: &[f64] = &[1e3, 1e4, 1e5, 1e6, 1e7, 1e8];

/// Bucket bounds (tuples) for `masort_runs_length` — run lengths span from a
/// page's worth under tiny budgets to whole-input natural runs under adaptive
/// formation.
const RUN_LENGTH_BUCKETS: &[f64] = &[1e2, 1e3, 1e4, 1e5, 1e6, 1e7];

/// Where a job's runs (and its output run) are stored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum RunStorage {
    /// Runs held in memory ([`MemStore`]); the default.
    #[default]
    InMemory,
    /// Runs spilled to a fresh temporary directory ([`FileStore`]) — a
    /// genuinely external sort. The directory is created when the job starts
    /// (not while it queues).
    TempDisk,
}

/// The run store a service job executes against: in-memory or a temporary
/// directory, behind one concrete type so every
/// [`JobReport`] streams the same way.
#[derive(Debug)]
pub enum ServiceStore {
    /// Runs held in memory.
    Mem(MemStore),
    /// Runs spilled to a temporary directory.
    Temp(FileStore),
}

impl ServiceStore {
    fn inner(&self) -> &dyn RunStore {
        match self {
            ServiceStore::Mem(s) => s,
            ServiceStore::Temp(s) => s,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn RunStore {
        match self {
            ServiceStore::Mem(s) => s,
            ServiceStore::Temp(s) => s,
        }
    }

    /// Seconds the store spent blocked on write-behind blocks (0 for
    /// in-memory stores, which never stall).
    pub fn write_stall_seconds(&self) -> f64 {
        match self {
            ServiceStore::Mem(_) => 0.0,
            ServiceStore::Temp(s) => s.write_stall_seconds(),
        }
    }
}

impl RunStore for ServiceStore {
    fn create_run(&mut self) -> SortResult<RunId> {
        self.inner_mut().create_run()
    }

    fn append_page(&mut self, run: RunId, page: Page) -> SortResult<()> {
        self.inner_mut().append_page(run, page)
    }

    fn append_block(&mut self, run: RunId, pages: Vec<Page>) -> SortResult<()> {
        self.inner_mut().append_block(run, pages)
    }

    fn read_page(&mut self, run: RunId, idx: usize) -> SortResult<Page> {
        self.inner_mut().read_page(run, idx)
    }

    fn read_block(&mut self, run: RunId, start: usize, len: usize) -> SortResult<Vec<Page>> {
        self.inner_mut().read_block(run, start, len)
    }

    fn block_read_job(&mut self, run: RunId, start: usize, len: usize) -> Option<BlockReadJob> {
        self.inner_mut().block_read_job(run, start, len)
    }

    fn attach_io_pool(&mut self, pool: IoPool) {
        self.inner_mut().attach_io_pool(pool)
    }

    fn io_pool(&self) -> Option<IoPool> {
        self.inner().io_pool()
    }

    fn set_write_coalescing(&mut self, pages: usize) {
        self.inner_mut().set_write_coalescing(pages)
    }

    fn attach_trace(&mut self, trace: masort_trace::Trace) {
        self.inner_mut().attach_trace(trace)
    }

    fn flush(&mut self) -> SortResult<()> {
        self.inner_mut().flush()
    }

    fn run_pages(&self, run: RunId) -> usize {
        self.inner().run_pages(run)
    }

    fn run_tuples(&self, run: RunId) -> usize {
        self.inner().run_tuples(run)
    }

    fn delete_run(&mut self, run: RunId) -> SortResult<()> {
        self.inner_mut().delete_run(run)
    }
}

/// One sort submission: input + configuration + how the broker should treat
/// it (priority, guaranteed minimum, useful maximum, spill target).
pub struct SortRequest {
    cfg: SortConfig,
    input: Box<dyn InputSource + Send>,
    storage: RunStorage,
    tenant: Option<String>,
    priority: u32,
    min_pages: Option<usize>,
    max_pages: Option<usize>,
}

impl std::fmt::Debug for SortRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortRequest")
            .field("tenant", &self.tenant)
            .field("priority", &self.priority)
            .field("min_pages", &self.min_pages)
            .field("max_pages", &self.max_pages)
            .field("storage", &self.storage)
            .finish()
    }
}

impl SortRequest {
    /// Sort the pages produced by `source` under configuration `cfg`.
    pub fn from_source(cfg: SortConfig, source: impl InputSource + Send + 'static) -> Self {
        SortRequest {
            cfg,
            input: Box::new(source),
            storage: RunStorage::InMemory,
            tenant: None,
            priority: 1,
            min_pages: None,
            max_pages: None,
        }
    }

    /// Sort an in-memory tuple vector (paginated with `cfg`'s geometry).
    pub fn tuples(cfg: SortConfig, tuples: Vec<Tuple>) -> Self {
        let per_page = cfg.tuples_per_page();
        Self::from_source(cfg, VecSource::from_tuples(tuples, per_page))
    }

    /// Attribute this job to `tenant` for per-tenant accounting
    /// ([`ServiceStats::tenants`](crate::ServiceStats)) and in its
    /// [`JobStats`]. Untagged jobs only count in the service-wide totals.
    pub fn tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Scheduling priority (larger = more important; default 1). How
    /// priority translates into pages is the arbitration policy's business.
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Pages this sort must be guaranteed while it runs (default 1). The
    /// request queues until the broker can cover this alongside the live
    /// sorts' minimums, and is rejected with
    /// [`SortError::BudgetStarved`] if it exceeds the whole pool.
    pub fn min_pages(mut self, pages: usize) -> Self {
        self.min_pages = Some(pages);
        self
    }

    /// Pages beyond which this sort gains nothing (default: the
    /// configuration's `memory_pages`). Surplus above this flows to other
    /// sorts.
    pub fn max_pages(mut self, pages: usize) -> Self {
        self.max_pages = Some(pages);
        self
    }

    /// Ask for up to `n` compute workers for this sort's split phase
    /// (shorthand for setting `cfg.cpu_threads`; default 1 =
    /// single-threaded). The service grants at most what its shared
    /// [`cpu_threads`](SortServiceBuilder::cpu_threads) allowance has free at
    /// admission — compute threads are capped across live sorts the same way
    /// the page pool is shared.
    pub fn cpu_threads(mut self, n: usize) -> Self {
        self.cfg.cpu_threads = n.max(1);
        self
    }

    /// Store this job's runs in `storage` (default [`RunStorage::InMemory`]).
    pub fn storage(mut self, storage: RunStorage) -> Self {
        self.storage = storage;
        self
    }

    /// Shorthand for [`RunStorage::TempDisk`].
    pub fn spill_to_temp_dir(self) -> Self {
        self.storage(RunStorage::TempDisk)
    }
}

/// Builder for [`SortService`]. See [`SortService::builder`].
pub struct SortServiceBuilder {
    pool_pages: usize,
    workers: usize,
    policy: Arc<dyn ArbitrationPolicy>,
    suspension_wait: Duration,
    io_threads: usize,
    io_pipeline_depth: usize,
    cpu_threads: usize,
    trace: Trace,
}

impl std::fmt::Debug for SortServiceBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SortServiceBuilder")
            .field("pool_pages", &self.pool_pages)
            .field("workers", &self.workers)
            .field("policy", &self.policy.name())
            .field("suspension_wait", &self.suspension_wait)
            .finish()
    }
}

impl Default for SortServiceBuilder {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        SortServiceBuilder {
            pool_pages: 256,
            workers,
            policy: Arc::new(EqualShare),
            suspension_wait: Duration::from_secs(5),
            io_threads: 0,
            io_pipeline_depth: 0,
            cpu_threads: 0,
            trace: Trace::disabled(),
        }
    }
}

impl SortServiceBuilder {
    /// Size of the global page pool the broker divides (default 256).
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Number of worker threads, i.e. how many sorts run concurrently
    /// (default: available parallelism clamped to 2..=8; floored at 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// The arbitration policy dividing the pool (default [`EqualShare`]).
    pub fn policy(mut self, policy: impl ArbitrationPolicy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// How long a sort using the *suspension* adaptation strategy waits for
    /// memory to return before proceeding anyway (default 5 s; shorter than
    /// the standalone [`RealEnv`] default because a service should degrade
    /// rather than stall).
    pub fn suspension_wait(mut self, wait: Duration) -> Self {
        self.suspension_wait = wait;
        self
    }

    /// Share one background [`IoPool`] of `n` worker threads across every
    /// sort this service runs (default 0 = no pool, synchronous I/O).
    /// Spilled jobs gain write-behind and merge read-ahead; see
    /// [`io_pipeline`](Self::io_pipeline) for the depth.
    pub fn io_threads(mut self, n: usize) -> Self {
        self.io_threads = n;
        self
    }

    /// Default read-ahead depth (pages per merge cursor) applied to every
    /// submission that does not set its own `SortConfig::io` pipeline depth
    /// (default 0 = pipeline off). Depth is rented from each job's own
    /// memory budget, so pipelining never lets a job exceed its brokered
    /// allocation.
    pub fn io_pipeline(mut self, depth: usize) -> Self {
        self.io_pipeline_depth = depth;
        self
    }

    /// Size of the shared *extra* compute-thread allowance for
    /// partition-parallel split phases (default 0 = every sort runs
    /// single-threaded, today's behaviour).
    ///
    /// Every live job always has its own worker thread; a job whose request
    /// asks for `cpu_threads = k` additionally borrows up to `k − 1` threads
    /// from this allowance at admission and returns them on completion — so
    /// the *sorting* threads across live sorts stay capped the same way the
    /// page pool is shared, rather than each job spawning freely. (During a
    /// parallel split the job's own worker thread is not idle: it becomes the
    /// store-writer lane, draining the workers' finished run pages into the
    /// job's run store — work it would otherwise have done inline.)
    pub fn cpu_threads(mut self, total_extra: usize) -> Self {
        self.cpu_threads = total_extra;
        self
    }

    /// Observability: emit admission/budget/phase/I-O events and service
    /// metrics through `trace` (default: disabled, zero overhead). Each job's
    /// events are recorded on [`job_span`]`(job_id)`; admission-queue and
    /// service-wide events stay on the handle's own span.
    pub fn trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Start the service: spawn the worker threads and return the handle.
    pub fn build(self) -> SortService {
        let shared = Arc::new(Shared {
            start: Instant::now(),
            suspension_wait: self.suspension_wait,
            io_pool: (self.io_threads > 0).then(|| IoPool::new(self.io_threads)),
            default_io_depth: self.io_pipeline_depth,
            trace: self.trace,
            state: Mutex::new(State {
                broker: MemoryBroker::new(self.pool_pages, self.policy),
                queue: AdmissionQueue::default(),
                stats: ServiceStats::default(),
                next_job: 0,
                cpu_free: self.cpu_threads,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let handles = (0..self.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("masort-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawning a sort worker thread failed")
            })
            .collect();
        SortService { shared, handles }
    }
}

struct State {
    broker: MemoryBroker,
    queue: AdmissionQueue,
    stats: ServiceStats,
    next_job: JobId,
    /// Unclaimed extra compute threads (see
    /// [`SortServiceBuilder::cpu_threads`]); borrowed at admission, returned
    /// at completion.
    cpu_free: usize,
    shutdown: bool,
}

pub(crate) struct Shared {
    start: Instant,
    suspension_wait: Duration,
    /// Background I/O pool shared by every sort this service runs, if any.
    io_pool: Option<IoPool>,
    /// Pipeline depth applied to submissions that do not choose their own.
    default_io_depth: usize,
    /// Service-wide observability handle; jobs emit on [`job_span`] rebinds.
    pub(crate) trace: Trace,
    state: Mutex<State>,
    work: Condvar,
}

impl Shared {
    fn now(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.state.lock()
    }

    /// Remove job `job` from the admission queue, if it is still queued, and
    /// account the cancellation. Returns whether the job was removed — if so
    /// the caller owns its ticket's resolution; if not the job is running (or
    /// done) and cancellation travels through its budget instead.
    pub(crate) fn cancel_queued(&self, job: JobId) -> bool {
        let mut st = self.lock();
        match st.queue.remove(job) {
            Some(req) => {
                st.stats.cancelled += 1;
                if let Some(tenant) = &req.tenant {
                    st.stats.tenant_entry(tenant).cancelled += 1;
                }
                drop(st);
                if self.trace.is_enabled() {
                    self.trace
                        .with_span(job_span(job))
                        .emit(EventKind::Cancelled);
                    if let Some(metrics) = self.trace.metrics() {
                        metrics.counter("jobs_cancelled_total", None).inc();
                    }
                }
                // The request (and its boxed input source) dies outside the
                // state lock.
                drop(req);
                true
            }
            None => false,
        }
    }
}

/// A concurrent multi-sort service over one globally brokered page pool.
///
/// Submissions run on a bounded worker-thread pool; the
/// [`MemoryBroker`] re-divides the pool across all live sorts on every
/// admission, completion and [`resize_pool`](Self::resize_pool) call by
/// moving each sort's shared [`MemoryBudget`] target — so sorts genuinely
/// grow, shrink, suspend, page and split **while running**, exactly as under
/// the paper's DBMS buffer manager, but on real threads.
///
/// Dropping the service (or calling [`shutdown`](Self::shutdown)) stops
/// accepting new work, drains the queue, and joins the workers; every issued
/// ticket is fulfilled.
#[derive(Debug)]
pub struct SortService {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared").finish_non_exhaustive()
    }
}

impl SortService {
    /// Start building a service (pool size, worker count, policy).
    pub fn builder() -> SortServiceBuilder {
        SortServiceBuilder::default()
    }

    /// Submit a sort. Returns a ticket redeemable for the result.
    ///
    /// Fails fast with [`SortError::InvalidConfig`] for unusable
    /// configurations (or a shut-down service) and with
    /// [`SortError::BudgetStarved`] when the request's minimum exceeds the
    /// whole pool — an impossible request is rejected rather than queued
    /// forever.
    pub fn submit(&self, request: SortRequest) -> SortResult<SortTicket> {
        request.cfg.validate()?;
        let min_pages = request.min_pages.unwrap_or(1).max(1);
        let max_pages = request
            .max_pages
            .unwrap_or(request.cfg.memory_pages)
            .max(min_pages);
        let mut st = self.shared.lock();
        if st.shutdown {
            return Err(SortError::invalid_config(
                "SortService is shut down and no longer accepts submissions",
            ));
        }
        if min_pages > st.broker.pool_pages() {
            st.stats.rejected += 1;
            let granted = st.broker.pool_pages();
            drop(st);
            self.shared.trace.emit(EventKind::AdmissionRejected {
                needed: min_pages,
                granted,
            });
            if let Some(metrics) = self.shared.trace.metrics() {
                metrics.counter("admission_rejected_total", None).inc();
            }
            return Err(SortError::BudgetStarved {
                needed: min_pages,
                granted,
            });
        }
        let job = st.next_job;
        st.next_job += 1;
        let tenant_label = request.tenant.clone();
        let ticket_shared = Arc::new(TicketShared::default());
        if let Some(tenant) = &request.tenant {
            st.stats.tenant_entry(tenant).submitted += 1;
        }
        st.queue.push(QueuedRequest {
            job,
            cfg: request.cfg,
            input: request.input,
            storage: request.storage,
            tenant: request.tenant,
            priority: request.priority,
            min_pages,
            max_pages,
            ticket: Arc::clone(&ticket_shared),
            submitted_at: self.shared.now(),
            bypassed: 0,
        });
        st.stats.submitted += 1;
        st.stats.peak_queued = st.stats.peak_queued.max(st.queue.len());
        drop(st);
        let trace = &self.shared.trace;
        if trace.is_enabled() {
            trace
                .with_span(job_span(job))
                .emit(EventKind::AdmissionQueued);
            if let Some(metrics) = trace.metrics() {
                metrics.counter("jobs_submitted_total", None).inc();
                if let Some(tenant) = &tenant_label {
                    metrics
                        .counter("jobs_submitted_total", Some(tenant.as_str()))
                        .inc();
                }
            }
        }
        self.shared.work.notify_all();
        Ok(SortTicket::new(
            job,
            ticket_shared,
            Arc::downgrade(&self.shared),
        ))
    }

    /// Grow or shrink the global page pool while sorts are running. Every
    /// live sort's budget is re-targeted immediately; queued requests whose
    /// minimum no longer fits in the pool at all are failed with
    /// [`SortError::BudgetStarved`].
    pub fn resize_pool(&self, pages: usize) {
        let now = self.shared.now();
        let mut st = self.shared.lock();
        st.broker.resize(pages, now);
        st.stats.resizes += 1;
        let doomed = st.queue.drain_impossible(pages);
        st.stats.rejected += doomed.len() as u64;
        drop(st);
        for req in doomed {
            req.ticket.fulfill(Err(SortError::BudgetStarved {
                needed: req.min_pages,
                granted: pages,
            }));
        }
        self.shared.work.notify_all();
    }

    /// Current size of the global page pool.
    pub fn pool_pages(&self) -> usize {
        self.shared.lock().broker.pool_pages()
    }

    /// Name of the arbitration policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.shared.lock().broker.policy_name()
    }

    /// Number of sorts currently executing (admitted, not yet completed).
    pub fn live_jobs(&self) -> usize {
        self.shared.lock().broker.live_count()
    }

    /// Number of requests waiting for admission.
    pub fn queued_jobs(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Snapshot of the service-wide aggregate statistics.
    pub fn stats(&self) -> ServiceStats {
        let st = self.shared.lock();
        let mut stats = st.stats.clone();
        stats.rebalances = st.broker.rebalances();
        stats
    }

    /// Stop accepting submissions, drain the queue, join the workers, and
    /// return the final statistics. Every issued ticket is fulfilled before
    /// this returns.
    pub fn shutdown(mut self) -> ServiceStats {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        let st = self.shared.lock();
        let mut stats = st.stats.clone();
        stats.rebalances = st.broker.rebalances();
        stats
    }

    fn begin_shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.work.notify_all();
    }
}

impl Drop for SortService {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// What a worker carries out of the admission critical section.
struct Admitted {
    req: QueuedRequest,
    budget: MemoryBudget,
    initial_grant: usize,
    start_version: u64,
    queued_for: f64,
    admitted_at: f64,
    /// Total compute workers granted (1 + threads borrowed from the shared
    /// allowance; the borrowed count goes back at release).
    cpu_workers: usize,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let admitted = {
            let mut st = shared.lock();
            loop {
                let state = &mut *st;
                if let Some(req) = state.queue.pop_admissible(&state.broker) {
                    let now = shared.now();
                    let budget = MemoryBudget::new(req.min_pages);
                    state.broker.admit(
                        JobDemand {
                            job: req.job,
                            priority: req.priority,
                            min_pages: req.min_pages,
                            max_pages: req.max_pages,
                        },
                        budget.clone(),
                        now,
                    );
                    // Make the budget reachable from the ticket; a cancel
                    // that raced this admission is applied to it in there.
                    req.ticket.attach_budget(budget.clone());
                    // Borrow extra compute workers from the shared allowance:
                    // grant what is free now rather than queueing for threads
                    // (memory is the scarce, brokered resource; compute
                    // degrades gracefully to fewer workers).
                    let extra = req.cfg.cpu_threads.saturating_sub(1).min(state.cpu_free);
                    state.cpu_free -= extra;
                    let queued_for = (now - req.submitted_at).max(0.0);
                    state.stats.peak_live = state.stats.peak_live.max(state.broker.live_count());
                    state.stats.total_queue_wait += queued_for;
                    let snapshot = budget.snapshot();
                    break Admitted {
                        req,
                        initial_grant: snapshot.target,
                        start_version: snapshot.version,
                        budget,
                        queued_for,
                        admitted_at: now,
                        cpu_workers: 1 + extra,
                    };
                }
                if st.shutdown && st.queue.is_empty() {
                    return;
                }
                st = shared.work.wait(st);
            }
        };
        run_admitted(&shared, admitted);
        // A completion frees committed minimums: queued requests may now fit.
        shared.work.notify_all();
    }
}

fn run_admitted(shared: &Shared, admitted: Admitted) {
    let Admitted {
        req,
        budget,
        initial_grant,
        start_version,
        queued_for,
        admitted_at,
        cpu_workers,
    } = admitted;
    let QueuedRequest {
        job,
        cfg,
        input,
        storage,
        tenant,
        priority,
        min_pages,
        max_pages,
        ticket,
        ..
    } = req;

    // The admission grant is the one place where the trace event and the
    // metrics counter come from the same numbers — timelines and counters
    // must agree on total pages granted.
    let trace = shared.trace.with_span(job_span(job));
    if trace.is_enabled() {
        trace.emit(EventKind::AdmissionGranted {
            pages: initial_grant,
        });
        if let Some(metrics) = trace.metrics() {
            metrics
                .counter("pages_granted_total", None)
                .add(initial_grant as u64);
            if let Some(tenant) = &tenant {
                metrics
                    .counter("pages_granted_total", Some(tenant.as_str()))
                    .add(initial_grant as u64);
            }
        }
        budget.attach_trace(trace.clone());
    }

    // A panicking job (e.g. a user-supplied `InputSource`) must not take the
    // worker thread down with it: its pages would stay committed forever and
    // its ticket would never be fulfilled. Contain the unwind and surface it
    // as an error on the ticket instead.
    // Service-wide I/O pipelining: submissions inherit the service's default
    // read-ahead depth unless they chose their own, and every pipelined sort
    // shares the service's single background I/O pool through its
    // environment.
    let mut cfg = cfg;
    if cfg.io.pipeline_depth == 0 {
        cfg.io.pipeline_depth = shared.default_io_depth;
    }
    // Cap the job's compute workers at what the shared allowance granted.
    cfg.cpu_threads = cpu_workers;
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        build_store(storage).and_then(|store| {
            let mut env = RealEnv::starting_at(shared.start);
            env.max_wait = shared.suspension_wait;
            env.io_pool = shared.io_pool.clone();
            env.trace = trace.clone();
            SortJob::builder()
                .config(cfg)
                .input(input)
                .store(store)
                .env(env)
                .budget(budget.clone())
                .build()?
                .run()
        })
    }))
    .unwrap_or_else(|panic| Err(panic_error(panic)));

    // Reallocations observed strictly after the initial grant and before this
    // job's own release below (which only re-targets the survivors).
    let reallocations = budget.version().saturating_sub(start_version);
    // Whatever the sort still records as held after finishing (successfully
    // or not) was never handed back: a leak. Measured before `release` so a
    // post-release rebalance cannot mask it.
    let leaked = budget.held();
    let finished_at = shared.now();
    let mut st = shared.lock();
    st.broker.release(job, finished_at);
    st.cpu_free += cpu_workers - 1;
    st.stats.leaked_pages += leaked as u64;
    if let Some(tenant) = &tenant {
        st.stats.tenant_entry(tenant).total_queue_wait += queued_for;
    }
    let outcome = match result {
        Ok(completion) => {
            let delays = &completion.outcome.delays;
            let merge = &completion.outcome.merge;
            let split = &completion.outcome.split;
            let stats = JobStats {
                job,
                tenant: tenant.clone(),
                priority,
                min_pages,
                max_pages,
                queued_for,
                ran_for: (finished_at - admitted_at).max(0.0),
                initial_grant,
                cpu_workers,
                reallocations,
                delay_samples: delays.len(),
                total_delay: delays.iter().map(DelaySample::delay).sum(),
                write_stall_seconds: completion.store.write_stall_seconds(),
                io_stall_seconds: merge.io_stall,
                sync_loads: merge.sync_block_loads,
                prefetch_joins: merge.prefetch_block_joins,
                io_peak_depth: shared.io_pool.as_ref().map_or(0, IoPool::peak_queued),
                runs_emitted: split.run_count(),
                min_run_tuples: split.min_run_tuples(),
                max_run_tuples: split.max_run_tuples(),
                avg_run_tuples: split.avg_run_tuples(),
                natural_runs: split.natural_runs,
                natural_tuples: split.natural_tuples,
            };
            st.stats.completed += 1;
            st.stats.total_reallocations += reallocations;
            st.stats.total_delay_samples += stats.delay_samples as u64;
            if let Some(tenant) = &tenant {
                st.stats.tenant_entry(tenant).completed += 1;
            }
            Ok(JobReport {
                completion,
                stats,
                trace: trace.clone(),
            })
        }
        Err(e) => {
            // A cancelled job did what it was told; count it apart from
            // genuine failures. A sort that was blocked on a streaming input
            // when the cancel landed reports its abandoned channel's I/O
            // error instead of `Cancelled` — normalise it, so cancellation
            // accounting is deterministic for the caller.
            let e = if ticket.cancel_requested() {
                SortError::Cancelled
            } else {
                e
            };
            if matches!(e, SortError::Cancelled) {
                st.stats.cancelled += 1;
                if let Some(tenant) = &tenant {
                    st.stats.tenant_entry(tenant).cancelled += 1;
                }
            } else {
                st.stats.failed += 1;
                if let Some(tenant) = &tenant {
                    st.stats.tenant_entry(tenant).failed += 1;
                }
            }
            Err(e)
        }
    };
    drop(st);
    if trace.is_enabled() {
        let tenant = tenant.as_deref();
        match &outcome {
            Ok(report) => {
                if let Some(metrics) = trace.metrics() {
                    let s = &report.stats;
                    let merge = &report.completion.outcome.merge;
                    let labels = std::iter::once(None).chain(tenant.map(Some));
                    for label in labels {
                        metrics.counter("jobs_completed_total", label).inc();
                        metrics
                            .histogram("job_response_seconds", label, LATENCY_BUCKETS)
                            .observe(s.response_time());
                        metrics
                            .histogram("job_queue_wait_seconds", label, LATENCY_BUCKETS)
                            .observe(s.queued_for);
                    }
                    metrics
                        .counter("budget_reallocations_total", None)
                        .add(reallocations);
                    metrics
                        .histogram("io_stall_seconds", None, LATENCY_BUCKETS)
                        .observe(s.io_stall_seconds + s.write_stall_seconds);
                    let duration = merge.duration();
                    if duration > 0.0 {
                        metrics
                            .histogram("merge_tuples_per_sec", None, THROUGHPUT_BUCKETS)
                            .observe(merge.tuples_output as f64 / duration);
                    }
                    let lengths = metrics.histogram("masort_runs_length", None, RUN_LENGTH_BUCKETS);
                    for run in &report.completion.outcome.split.runs {
                        lengths.observe(run.tuples as f64);
                    }
                    metrics
                        .gauge("io_pool_peak_depth", None)
                        .set(s.io_peak_depth as i64);
                }
            }
            Err(e) => {
                let cancelled = matches!(e, SortError::Cancelled);
                if cancelled {
                    trace.emit(EventKind::Cancelled);
                }
                if let Some(metrics) = trace.metrics() {
                    let name = if cancelled {
                        "jobs_cancelled_total"
                    } else {
                        "jobs_failed_total"
                    };
                    metrics.counter(name, None).inc();
                    if let Some(t) = tenant {
                        metrics.counter(name, Some(t)).inc();
                    }
                }
            }
        }
    }
    ticket.fulfill(outcome);
}

/// Convert a caught panic payload into the error delivered on the ticket.
fn panic_error(payload: Box<dyn std::any::Any + Send>) -> SortError {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    SortError::Io(std::io::Error::other(format!("sort job panicked: {msg}")))
}

fn build_store(storage: RunStorage) -> SortResult<ServiceStore> {
    match storage {
        RunStorage::InMemory => Ok(ServiceStore::Mem(MemStore::new())),
        RunStorage::TempDisk => Ok(ServiceStore::Temp(FileStore::in_temp_dir()?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{MinGuarantee, PriorityWeighted};
    use masort_core::verify::assert_sorted_permutation;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_tuples(n: usize, seed: u64) -> Vec<Tuple> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Tuple::synthetic(rng.gen::<u64>(), 64))
            .collect()
    }

    fn small_cfg(mem: usize) -> SortConfig {
        SortConfig::default()
            .with_page_size(512)
            .with_tuple_size(64)
            .with_memory_pages(mem)
    }

    #[test]
    fn single_job_round_trip() {
        let svc = SortService::builder().pool_pages(16).workers(2).build();
        let input = random_tuples(2_000, 1);
        let ticket = svc
            .submit(SortRequest::tuples(small_cfg(8), input.clone()))
            .unwrap();
        let report = ticket.wait().unwrap();
        assert!(report.stats.initial_grant >= 1);
        let sorted = report.into_sorted_vec().unwrap();
        assert_sorted_permutation(&input, &sorted);
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn temp_disk_storage_round_trip() {
        let svc = SortService::builder().pool_pages(16).workers(1).build();
        let input = random_tuples(1_200, 2);
        let report = svc
            .submit(SortRequest::tuples(small_cfg(6), input.clone()).spill_to_temp_dir())
            .unwrap()
            .wait()
            .unwrap();
        assert!(matches!(report.completion.store, ServiceStore::Temp(_)));
        let sorted = report.into_sorted_vec().unwrap();
        assert_sorted_permutation(&input, &sorted);
    }

    #[test]
    fn impossible_request_is_rejected_not_queued() {
        let svc = SortService::builder().pool_pages(8).workers(1).build();
        let err = svc
            .submit(SortRequest::tuples(small_cfg(4), Vec::new()).min_pages(9))
            .unwrap_err();
        assert!(matches!(
            err,
            SortError::BudgetStarved {
                needed: 9,
                granted: 8
            }
        ));
        assert_eq!(svc.stats().rejected, 1);
    }

    #[test]
    fn invalid_config_is_rejected_at_submit() {
        let svc = SortService::builder().pool_pages(8).workers(1).build();
        let mut cfg = small_cfg(4);
        cfg.page_size = 0;
        let err = svc
            .submit(SortRequest::tuples(cfg, Vec::new()))
            .unwrap_err();
        assert!(matches!(err, SortError::InvalidConfig(_)));
        // A zero tuple size must not panic while paginating the request; it
        // is rejected by validation at submit like every other bad config.
        let mut cfg = small_cfg(4);
        cfg.tuple_size = 0;
        let err = svc
            .submit(SortRequest::tuples(cfg, vec![Tuple::synthetic(1, 64)]))
            .unwrap_err();
        assert!(matches!(err, SortError::InvalidConfig(_)));
    }

    #[test]
    fn pool_shrink_fails_queued_requests_that_no_longer_fit() {
        // One worker, and a long-running job holding the pool, so the
        // big-minimum request is still queued when the pool shrinks.
        let svc = SortService::builder().pool_pages(32).workers(1).build();
        let blocker = svc
            .submit(SortRequest::tuples(small_cfg(8), random_tuples(30_000, 3)).min_pages(2))
            .unwrap();
        let doomed = svc
            .submit(SortRequest::tuples(small_cfg(8), Vec::new()).min_pages(24))
            .unwrap();
        svc.resize_pool(12);
        match doomed.wait() {
            Err(SortError::BudgetStarved {
                needed: 24,
                granted: 12,
            }) => {}
            other => panic!("expected BudgetStarved, got {other:?}"),
        }
        blocker.wait().unwrap();
        let stats = svc.shutdown();
        assert_eq!(stats.rejected, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.resizes, 1);
    }

    #[test]
    fn shutdown_drains_queued_work() {
        let svc = SortService::builder().pool_pages(16).workers(2).build();
        let inputs: Vec<Vec<Tuple>> = (0..6).map(|i| random_tuples(1_500, 40 + i)).collect();
        let tickets: Vec<SortTicket> = inputs
            .iter()
            .map(|input| {
                svc.submit(SortRequest::tuples(small_cfg(6), input.clone()))
                    .unwrap()
            })
            .collect();
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 6);
        for (ticket, input) in tickets.into_iter().zip(&inputs) {
            let sorted = ticket.wait().unwrap().into_sorted_vec().unwrap();
            assert_sorted_permutation(input, &sorted);
        }
    }

    #[test]
    fn submit_after_shutdown_is_refused() {
        let svc = SortService::builder().pool_pages(16).workers(1).build();
        svc.begin_shutdown();
        let err = svc
            .submit(SortRequest::tuples(small_cfg(4), Vec::new()))
            .unwrap_err();
        assert!(matches!(err, SortError::InvalidConfig(_)));
    }

    #[test]
    fn panicking_job_fails_its_ticket_and_releases_its_pages() {
        struct PanickingSource;
        impl InputSource for PanickingSource {
            fn next_page(&mut self) -> SortResult<Option<Page>> {
                panic!("user input source exploded");
            }
        }
        let svc = SortService::builder().pool_pages(8).workers(1).build();
        let err = svc
            .submit(SortRequest::from_source(small_cfg(4), PanickingSource).min_pages(8))
            .unwrap()
            .wait()
            .unwrap_err();
        match err {
            SortError::Io(e) => assert!(e.to_string().contains("panicked"), "{e}"),
            other => panic!("expected an Io(panicked) error, got {other:?}"),
        }
        // The dead job's pages were released and its worker survived: a job
        // needing the whole pool can still be admitted and completes.
        let input = random_tuples(800, 9);
        let sorted = svc
            .submit(SortRequest::tuples(small_cfg(4), input.clone()).min_pages(8))
            .unwrap()
            .wait()
            .unwrap()
            .into_sorted_vec()
            .unwrap();
        assert_sorted_permutation(&input, &sorted);
        let stats = svc.shutdown();
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn pipelined_service_round_trips_spilled_sorts() {
        // One shared I/O pool across the whole service; every submission
        // inherits the default read-ahead depth and spills to disk.
        let svc = SortService::builder()
            .pool_pages(24)
            .workers(2)
            .io_threads(2)
            .io_pipeline(4)
            .build();
        let inputs: Vec<Vec<Tuple>> = (0..4).map(|i| random_tuples(2_000, 90 + i)).collect();
        let tickets: Vec<SortTicket> = inputs
            .iter()
            .map(|input| {
                svc.submit(SortRequest::tuples(small_cfg(8), input.clone()).spill_to_temp_dir())
                    .unwrap()
            })
            .collect();
        for (ticket, input) in tickets.into_iter().zip(&inputs) {
            let sorted = ticket.wait().unwrap().into_sorted_vec().unwrap();
            assert_sorted_permutation(input, &sorted);
        }
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn compute_threads_are_capped_by_the_shared_allowance() {
        // 2 extra threads shared service-wide: the first admitted parallel
        // job can borrow at most 2 (3 workers total), and with the default
        // allowance of 0 every job runs single-threaded no matter what the
        // request asks for.
        let svc = SortService::builder()
            .pool_pages(32)
            .workers(1)
            .cpu_threads(2)
            .build();
        let input = random_tuples(4_000, 77);
        let report = svc
            .submit(SortRequest::tuples(small_cfg(8), input.clone()).cpu_threads(8))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(report.stats.cpu_workers, 3, "1 own + 2 borrowed");
        let sorted = report.into_sorted_vec().unwrap();
        assert_sorted_permutation(&input, &sorted);
        // The borrowed threads came back: a second job gets them again.
        let report = svc
            .submit(SortRequest::tuples(small_cfg(8), random_tuples(800, 78)).cpu_threads(2))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(report.stats.cpu_workers, 2);
        svc.shutdown();

        let svc = SortService::builder().pool_pages(16).workers(1).build();
        let report = svc
            .submit(SortRequest::tuples(small_cfg(8), random_tuples(500, 79)).cpu_threads(4))
            .unwrap()
            .wait()
            .unwrap();
        assert_eq!(
            report.stats.cpu_workers, 1,
            "no allowance, no extra threads"
        );
        svc.shutdown();
    }

    #[test]
    fn parallel_jobs_share_the_allowance_and_still_sort_correctly() {
        let svc = SortService::builder()
            .pool_pages(48)
            .workers(3)
            .cpu_threads(4)
            .build();
        let inputs: Vec<Vec<Tuple>> = (0..6).map(|i| random_tuples(3_000, 200 + i)).collect();
        let tickets: Vec<SortTicket> = inputs
            .iter()
            .map(|input| {
                svc.submit(SortRequest::tuples(small_cfg(8), input.clone()).cpu_threads(3))
                    .unwrap()
            })
            .collect();
        let mut granted_extra_total = 0usize;
        for (ticket, input) in tickets.into_iter().zip(&inputs) {
            let report = ticket.wait().unwrap();
            assert!(
                (1..=3).contains(&report.stats.cpu_workers),
                "granted {} workers",
                report.stats.cpu_workers
            );
            granted_extra_total += report.stats.cpu_workers - 1;
            let sorted = report.into_sorted_vec().unwrap();
            assert_sorted_permutation(input, &sorted);
        }
        assert!(
            granted_extra_total > 0,
            "some job should have gone parallel"
        );
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 6);
    }

    #[test]
    fn cancelling_a_queued_job_removes_it_without_reserving_anything() {
        // One worker, and a job holding the whole pool's minimum, so the
        // second submission is deterministically still queued when cancelled.
        let svc = SortService::builder().pool_pages(8).workers(1).build();
        let blocker = svc
            .submit(SortRequest::tuples(small_cfg(4), random_tuples(20_000, 11)).min_pages(8))
            .unwrap();
        let queued = svc
            .submit(
                SortRequest::tuples(small_cfg(4), random_tuples(1_000, 12))
                    .min_pages(8)
                    .tenant("acme"),
            )
            .unwrap();
        assert!(queued.cancel(), "job was pending; cancel must take effect");
        match queued.wait() {
            Err(SortError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        blocker.wait().unwrap();
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0, "a cancel is not a failure");
        assert_eq!(stats.leaked_pages, 0);
        assert_eq!(stats.tenant("acme").unwrap().cancelled, 1);
        assert_eq!(stats.tenant("acme").unwrap().submitted, 1);
    }

    #[test]
    fn cancelling_a_running_job_aborts_it_and_releases_its_pages() {
        let svc = SortService::builder().pool_pages(8).workers(1).build();
        // Large enough that the sort is still mid-flight when the cancel
        // lands right after admission.
        let ticket = svc
            .submit(
                SortRequest::tuples(small_cfg(8), random_tuples(60_000, 13))
                    .min_pages(8)
                    .tenant("acme"),
            )
            .unwrap();
        while svc.live_jobs() == 0 {
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(ticket.cancel());
        match ticket.wait() {
            Err(SortError::Cancelled) => {}
            other => panic!("expected Cancelled, got {other:?}"),
        }
        // The dead job's pages came back: a sort needing the whole pool runs.
        let input = random_tuples(800, 14);
        let sorted = svc
            .submit(SortRequest::tuples(small_cfg(4), input.clone()).min_pages(8))
            .unwrap()
            .wait()
            .unwrap()
            .into_sorted_vec()
            .unwrap();
        assert_sorted_permutation(&input, &sorted);
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.leaked_pages, 0, "cancelled job leaked pages");
        assert_eq!(stats.tenant("acme").unwrap().cancelled, 1);
    }

    #[test]
    fn cancel_after_completion_is_a_no_op() {
        let svc = SortService::builder().pool_pages(8).workers(1).build();
        let input = random_tuples(500, 15);
        let ticket = svc
            .submit(SortRequest::tuples(small_cfg(4), input.clone()))
            .unwrap();
        while !ticket.is_done() {
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(!ticket.cancel(), "finished job cannot be cancelled");
        let sorted = ticket.wait().unwrap().into_sorted_vec().unwrap();
        assert_sorted_permutation(&input, &sorted);
        let stats = svc.shutdown();
        assert_eq!(stats.cancelled, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn tenant_accounting_follows_jobs_through_their_lifecycle() {
        struct FailingSource;
        impl InputSource for FailingSource {
            fn next_page(&mut self) -> SortResult<Option<Page>> {
                Err(SortError::Io(std::io::Error::other("tenant b's disk died")))
            }
        }
        let svc = SortService::builder().pool_pages(16).workers(2).build();
        let mut tickets = Vec::new();
        for i in 0..3 {
            tickets.push(
                svc.submit(
                    SortRequest::tuples(small_cfg(4), random_tuples(600, 20 + i)).tenant("a"),
                )
                .unwrap(),
            );
        }
        let failing = svc
            .submit(SortRequest::from_source(small_cfg(4), FailingSource).tenant("b"))
            .unwrap();
        // An untagged job appears only in the service-wide totals.
        tickets.push(
            svc.submit(SortRequest::tuples(small_cfg(4), random_tuples(600, 30)))
                .unwrap(),
        );
        for t in tickets {
            t.wait().unwrap();
        }
        failing.wait().unwrap_err();
        let stats = svc.shutdown();
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.tenants.len(), 2);
        let a = stats.tenant("a").unwrap();
        assert_eq!((a.submitted, a.completed, a.failed), (3, 3, 0));
        assert!(a.total_queue_wait >= 0.0);
        let b = stats.tenant("b").unwrap();
        assert_eq!((b.submitted, b.completed, b.failed), (1, 0, 1));
        assert!(stats.tenant("c").is_none());
        assert_eq!(stats.leaked_pages, 0);
    }

    #[test]
    fn all_policies_run_the_same_workload() {
        fn run(policy: impl ArbitrationPolicy + 'static) {
            let svc = SortService::builder()
                .pool_pages(20)
                .workers(3)
                .policy(policy)
                .build();
            let inputs: Vec<Vec<Tuple>> = (0..5).map(|i| random_tuples(2_000, 70 + i)).collect();
            let tickets: Vec<SortTicket> = inputs
                .iter()
                .enumerate()
                .map(|(i, input)| {
                    svc.submit(
                        SortRequest::tuples(small_cfg(10), input.clone())
                            .priority(1 + (i as u32 % 3))
                            .min_pages(2),
                    )
                    .unwrap()
                })
                .collect();
            for (ticket, input) in tickets.into_iter().zip(&inputs) {
                let report = ticket.wait().unwrap();
                assert!(report.stats.initial_grant >= 2, "minimum not honoured");
                let sorted = report.into_sorted_vec().unwrap();
                assert_sorted_permutation(input, &sorted);
            }
        }
        run(EqualShare);
        run(PriorityWeighted);
        run(MinGuarantee);
    }
}
