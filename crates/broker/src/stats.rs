//! Per-job and service-wide broker statistics.
//!
//! These mirror the measurements of the paper's evaluation at service level:
//! how long requests queued for admission, how often the broker re-divided
//! memory under each job, and the split/merge-phase delay samples each sort's
//! [`MemoryBudget`](masort_core::MemoryBudget) recorded while honouring
//! shrink requests.

use crate::ticket::JobId;
use std::collections::BTreeMap;

/// Broker-side statistics for one completed job.
#[derive(Clone, Debug)]
pub struct JobStats {
    /// The job these statistics belong to.
    pub job: JobId,
    /// Tenant the job was submitted on behalf of
    /// ([`SortRequest::tenant`](crate::SortRequest::tenant)), if any.
    pub tenant: Option<String>,
    /// Priority the job was submitted with.
    pub priority: u32,
    /// Guaranteed minimum share (pages).
    pub min_pages: usize,
    /// Maximum useful share (pages).
    pub max_pages: usize,
    /// Seconds spent queued before admission (waiting for the minimum share
    /// to become available).
    pub queued_for: f64,
    /// Seconds between admission and completion.
    pub ran_for: f64,
    /// Pages granted by the arbitration policy at admission.
    pub initial_grant: usize,
    /// Compute workers the job's split phase was granted (1 = single-threaded;
    /// more were borrowed from the service's shared
    /// [`cpu_threads`](crate::SortServiceBuilder::cpu_threads) allowance and
    /// returned at completion).
    pub cpu_workers: usize,
    /// Number of times the broker adjusted this job's page target *after* its
    /// initial grant — i.e. mid-flight reallocations, observed via
    /// [`MemoryBudget::version`](masort_core::MemoryBudget::version).
    pub reallocations: u64,
    /// Number of delay samples the budget recorded while the sort honoured
    /// shrink requests (the paper's split-phase / merge-phase delays). The
    /// samples themselves live in the outcome
    /// ([`SortOutcome::delays`](masort_core::SortOutcome)) — this avoids
    /// carrying the vector twice in every report.
    pub delay_samples: usize,
    /// Summed duration (seconds) of those delay samples.
    pub total_delay: f64,
    /// Seconds the job's run store spent blocked waiting for write-behind
    /// blocks to land (0 for in-memory stores and synchronous writes).
    pub write_stall_seconds: f64,
    /// Seconds the merge phase spent blocked on input I/O (synchronous block
    /// reads plus waits on in-flight prefetch blocks).
    pub io_stall_seconds: f64,
    /// Input blocks the merge loaded synchronously on its own thread.
    pub sync_loads: usize,
    /// Input blocks delivered by the background prefetcher.
    pub prefetch_joins: usize,
    /// Deepest the service's shared background I/O pool queue has been as of
    /// this job's completion (0 when the service runs without a pool). A
    /// pool-lifetime high-water mark, not a per-job figure.
    pub io_peak_depth: usize,
    /// Sorted runs the split phase emitted.
    pub runs_emitted: usize,
    /// Tuples in the shortest run (0 if no runs were formed).
    pub min_run_tuples: usize,
    /// Tuples in the longest run (0 if no runs were formed).
    pub max_run_tuples: usize,
    /// Mean tuples per run (0 if no runs were formed).
    pub avg_run_tuples: f64,
    /// Natural (pre-existing) runs the split phase detected in its input —
    /// populated only when the job ran with
    /// [`adaptive_runs`](masort_core::SortConfig::adaptive_runs) on.
    pub natural_runs: usize,
    /// Tuples absorbed through the order-detection fast path (see
    /// `natural_runs`); 0 for classic formation.
    pub natural_tuples: usize,
}

impl JobStats {
    /// Mean delay (seconds) across all shrink requests this job honoured, or
    /// zero if it never faced a shortage.
    pub fn mean_delay(&self) -> f64 {
        if self.delay_samples == 0 {
            0.0
        } else {
            self.total_delay / self.delay_samples as f64
        }
    }

    /// Total response time: queue wait plus execution.
    pub fn response_time(&self) -> f64 {
        self.queued_for + self.ran_for
    }
}

/// Aggregate statistics across the whole service lifetime.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests accepted by [`submit`](crate::SortService::submit).
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that started but failed (I/O errors, corrupt runs, ...).
    pub failed: u64,
    /// Requests rejected as impossible (`min_pages` larger than the pool, at
    /// submission or after a pool shrink).
    pub rejected: u64,
    /// Times the broker re-divided the pool (admissions + completions +
    /// resizes).
    pub rebalances: u64,
    /// Explicit [`resize_pool`](crate::SortService::resize_pool) calls.
    pub resizes: u64,
    /// Most sorts ever live at once.
    pub peak_live: usize,
    /// Most requests ever queued at once.
    pub peak_queued: usize,
    /// Total seconds jobs spent queued before admission.
    pub total_queue_wait: f64,
    /// Total mid-flight reallocations across all completed jobs.
    pub total_reallocations: u64,
    /// Total delay samples recorded across all completed jobs.
    pub total_delay_samples: u64,
    /// Jobs cancelled through [`SortTicket::cancel`](crate::SortTicket) —
    /// removed from the queue before running, or aborted mid-flight at an
    /// adaptivity checkpoint. Counted here, not under `failed`.
    pub cancelled: u64,
    /// Pages a job's budget still recorded as held when the broker released
    /// the job. Every sort — completed, failed or cancelled — must hand all
    /// of its pages back, so anything other than zero is a leak.
    pub leaked_pages: u64,
    /// Per-tenant accounting for submissions tagged with
    /// [`SortRequest::tenant`](crate::SortRequest::tenant); untagged
    /// submissions only appear in the service-wide counters above.
    pub tenants: BTreeMap<String, TenantStats>,
}

impl ServiceStats {
    /// Accounting for one tenant, if any job has been submitted under `name`.
    pub fn tenant(&self, name: &str) -> Option<&TenantStats> {
        self.tenants.get(name)
    }

    pub(crate) fn tenant_entry(&mut self, name: &str) -> &mut TenantStats {
        // Entry-by-owned-key only when the tenant is new.
        if !self.tenants.contains_key(name) {
            self.tenants
                .insert(name.to_string(), TenantStats::default());
        }
        self.tenants.get_mut(name).expect("just inserted")
    }
}

/// Aggregate statistics for one tenant's submissions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TenantStats {
    /// Requests accepted for this tenant.
    pub submitted: u64,
    /// Jobs that finished successfully.
    pub completed: u64,
    /// Jobs that started but failed.
    pub failed: u64,
    /// Jobs cancelled while queued or running.
    pub cancelled: u64,
    /// Total seconds this tenant's jobs spent queued before admission.
    pub total_queue_wait: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_stats_mean_delay() {
        let mut s = JobStats {
            job: 0,
            tenant: None,
            priority: 1,
            min_pages: 1,
            max_pages: 8,
            queued_for: 0.5,
            ran_for: 1.5,
            initial_grant: 4,
            cpu_workers: 1,
            reallocations: 3,
            delay_samples: 0,
            total_delay: 0.0,
            write_stall_seconds: 0.0,
            io_stall_seconds: 0.0,
            sync_loads: 0,
            prefetch_joins: 0,
            io_peak_depth: 0,
            runs_emitted: 0,
            min_run_tuples: 0,
            max_run_tuples: 0,
            avg_run_tuples: 0.0,
            natural_runs: 0,
            natural_tuples: 0,
        };
        assert_eq!(s.mean_delay(), 0.0);
        assert!((s.response_time() - 2.0).abs() < 1e-12);
        // One 1 s split-phase delay and one 3 s merge-phase delay.
        s.delay_samples = 2;
        s.total_delay = 4.0;
        assert!((s.mean_delay() - 2.0).abs() < 1e-12);
    }
}
