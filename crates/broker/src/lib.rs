//! # masort-broker — a concurrent multi-sort service with a global memory broker
//!
//! The paper's premise is a DBMS in which many queries compete for buffer
//! memory and every external sort must adapt as its allocation fluctuates.
//! `masort-core` provides the adaptive sorts and the shared
//! [`MemoryBudget`](masort_core::MemoryBudget) handle; this crate provides
//! the component that actually moves those budgets: a [`SortService`] that
//! runs many sorts concurrently on a bounded worker-thread pool, and a
//! [`MemoryBroker`] that re-divides **one global page pool** across all live
//! sorts on every admission, completion and explicit
//! [`resize_pool`](SortService::resize_pool) call. Sorts genuinely grow,
//! shrink, suspend, page and split *while running* — the paper's
//! memory-adaptive behaviour on real threads instead of inside the simulator.
//!
//! ```
//! use masort_broker::prelude::*;
//! use masort_core::prelude::*;
//!
//! let service = SortService::builder()
//!     .pool_pages(32)              // one global pool, smaller than demand
//!     .workers(4)
//!     .policy(PriorityWeighted)    // or EqualShare / MinGuarantee / your own
//!     .build();
//!
//! let cfg = SortConfig::default()
//!     .with_page_size(512)
//!     .with_tuple_size(64)
//!     .with_memory_pages(16);      // what each sort would *like* to have
//! let tickets: Vec<SortTicket> = (0..8)
//!     .map(|i| {
//!         let tuples = (0..2_000u64)
//!             .map(|k| Tuple::synthetic(k.wrapping_mul(0x9E3779B97F4A7C15) ^ i, 64))
//!             .collect();
//!         service
//!             .submit(
//!                 SortRequest::tuples(cfg.clone(), tuples)
//!                     .priority(1 + (i % 3) as u32)
//!                     .min_pages(2),
//!             )
//!             .unwrap()
//!     })
//!     .collect();
//!
//! service.resize_pool(16);         // steal memory from everyone, mid-flight
//! service.resize_pool(48);         // ... and give it back
//!
//! for ticket in tickets {
//!     let report = ticket.wait()?; // SortCompletion + per-job broker stats
//!     assert!(report.stats.initial_grant >= 2);
//!     let mut previous = 0u64;
//!     for tuple in report.into_stream() {
//!         let tuple = tuple?;
//!         assert!(tuple.key >= previous);
//!         previous = tuple.key;
//!     }
//! }
//! # Ok::<(), masort_core::SortError>(())
//! ```
//!
//! ## Writing an arbitration policy
//!
//! Arbitration is pluggable through the [`ArbitrationPolicy`] trait — a pure,
//! deterministic function from *(pool size, live-job demands)* to one share
//! per job:
//!
//! ```
//! use masort_broker::{ArbitrationPolicy, JobDemand};
//!
//! /// Everything to the newest sort, minimums to the rest.
//! struct NewestTakesAll;
//!
//! impl ArbitrationPolicy for NewestTakesAll {
//!     fn name(&self) -> &'static str {
//!         "newest-takes-all"
//!     }
//!     fn divide(&self, pool: usize, jobs: &[JobDemand]) -> Vec<usize> {
//!         let reserved: usize = jobs.iter().map(|j| j.min_pages).sum();
//!         let mut shares: Vec<usize> = jobs.iter().map(|j| j.min_pages).collect();
//!         if let Some(last) = shares.last_mut() {
//!             *last += pool.saturating_sub(reserved);
//!         }
//!         shares
//!     }
//! }
//! ```
//!
//! The broker invokes the policy under its lock on every admission,
//! completion and resize, then pushes each share into the corresponding
//! sort's `MemoryBudget` via `set_target`. Policies should keep
//! `sum(shares) <= pool` and respect each job's `[min_pages, cap()]` range;
//! the broker defensively clamps whatever comes back and never pushes a live
//! sort below one page. Three implementations ship with the crate —
//! [`EqualShare`], [`PriorityWeighted`] and [`MinGuarantee`] — see the
//! [`policy`] module for their exact semantics.
//!
//! ## Admission control
//!
//! Each request carries a guaranteed minimum share
//! ([`SortRequest::min_pages`]). A request is admitted only when the pool can
//! cover its minimum alongside the minimums of every live sort; until then it
//! queues. Impossible requests — a minimum larger than the whole pool — are
//! rejected with [`SortError::BudgetStarved`](masort_core::SortError) at
//! submission (or retroactively when the pool shrinks under a queued
//! request's minimum) instead of deadlocking the queue.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod admission;
pub mod broker;
pub mod policy;
pub mod service;
pub mod stats;
pub mod ticket;

pub use broker::MemoryBroker;
pub use policy::{ArbitrationPolicy, EqualShare, JobDemand, MinGuarantee, PriorityWeighted};
pub use service::{
    job_span, RunStorage, ServiceStore, SortRequest, SortService, SortServiceBuilder,
};
pub use stats::{JobStats, ServiceStats, TenantStats};
pub use ticket::{JobId, JobReport, SortTicket};

/// Convenient glob import of the service-facing types.
pub mod prelude {
    pub use crate::broker::MemoryBroker;
    pub use crate::policy::{
        ArbitrationPolicy, EqualShare, JobDemand, MinGuarantee, PriorityWeighted,
    };
    pub use crate::service::{
        job_span, RunStorage, ServiceStore, SortRequest, SortService, SortServiceBuilder,
    };
    pub use crate::stats::{JobStats, ServiceStats, TenantStats};
    pub use crate::ticket::{JobId, JobReport, SortTicket};
}
