//! The global memory broker: one page pool, many live sorts.
//!
//! [`MemoryBroker`] owns the pool size and the registry of live jobs, and on
//! every admission, release and resize asks its
//! [`ArbitrationPolicy`] to re-divide the pool, pushing the new share into
//! each job's [`MemoryBudget`] via
//! [`set_target`](MemoryBudget::set_target). The sorts observe the moved
//! target at their next adaptation point and grow, shrink, suspend, page or
//! split accordingly — this is the paper's DBMS buffer manager realised as a
//! real component driving real threads.
//!
//! The broker is usable standalone (hand it budgets you created for your own
//! [`SortJob`](masort_core::SortJob)s and call
//! [`rebalance`](MemoryBroker::rebalance) yourself); the
//! [`SortService`](crate::SortService) wraps it with worker threads and
//! admission control.

use crate::policy::{ArbitrationPolicy, JobDemand};
use crate::ticket::JobId;
use masort_core::MemoryBudget;
use std::sync::Arc;

struct LiveEntry {
    demand: JobDemand,
    budget: MemoryBudget,
}

/// Divides one global page pool across the live sorts' memory budgets.
pub struct MemoryBroker {
    pool_pages: usize,
    policy: Arc<dyn ArbitrationPolicy>,
    live: Vec<LiveEntry>,
    rebalances: u64,
}

impl std::fmt::Debug for MemoryBroker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryBroker")
            .field("pool_pages", &self.pool_pages)
            .field("policy", &self.policy.name())
            .field("live", &self.live.len())
            .field("rebalances", &self.rebalances)
            .finish()
    }
}

impl MemoryBroker {
    /// Create a broker over a pool of `pool_pages` pages, arbitrated by
    /// `policy`.
    pub fn new(pool_pages: usize, policy: Arc<dyn ArbitrationPolicy>) -> Self {
        MemoryBroker {
            pool_pages,
            policy,
            live: Vec::new(),
            rebalances: 0,
        }
    }

    /// Current pool size in pages.
    pub fn pool_pages(&self) -> usize {
        self.pool_pages
    }

    /// Name of the arbitration policy in use.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Number of live (admitted, not yet released) jobs.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// Total pages guaranteed to live jobs (the sum of their minimums).
    pub fn committed_min(&self) -> usize {
        self.live.iter().map(|e| e.demand.min_pages).sum()
    }

    /// Times the pool has been re-divided so far.
    pub fn rebalances(&self) -> u64 {
        self.rebalances
    }

    /// Whether a job guaranteed `min_pages` can be admitted right now without
    /// breaking the guarantees of the jobs already live.
    pub fn can_admit(&self, min_pages: usize) -> bool {
        self.committed_min() + min_pages <= self.pool_pages
    }

    /// Admit a job: register its demand and budget, then re-divide the pool
    /// (every live budget's target moves, including the newcomer's initial
    /// grant). Callers should check [`can_admit`](Self::can_admit) first;
    /// admitting an infeasible job degrades everyone proportionally instead
    /// of failing.
    pub fn admit(&mut self, demand: JobDemand, budget: MemoryBudget, now: f64) {
        self.live.push(LiveEntry { demand, budget });
        self.rebalance(now);
    }

    /// Release a completed job and re-divide the pool among the remaining
    /// live jobs. Releasing an unknown job id is a no-op (release must be
    /// idempotent so error paths can't wedge the broker).
    pub fn release(&mut self, job: JobId, now: f64) {
        let before = self.live.len();
        self.live.retain(|e| e.demand.job != job);
        if self.live.len() != before {
            self.rebalance(now);
        }
    }

    /// Grow or shrink the global pool and re-divide it immediately.
    pub fn resize(&mut self, pool_pages: usize, now: f64) {
        self.pool_pages = pool_pages;
        self.rebalance(now);
    }

    /// Re-divide the pool across all live jobs via the arbitration policy and
    /// push each share into the corresponding budget.
    ///
    /// Two defensive floors are enforced on whatever the policy returns: a
    /// share never exceeds the job's cap, and a live sort is never pushed
    /// below **one page** — if an operator shrinks the pool under the number
    /// of live sorts the broker temporarily overcommits rather than starving
    /// a sort outright (a sort holding zero pages cannot make progress).
    pub fn rebalance(&mut self, now: f64) {
        let demands: Vec<JobDemand> = self.live.iter().map(|e| e.demand).collect();
        let mut shares = self.policy.divide(self.pool_pages, &demands);
        shares.resize(demands.len(), 0);
        let mut spent = 0usize;
        for (share, demand) in shares.iter_mut().zip(&demands) {
            let room = self.pool_pages.saturating_sub(spent);
            *share = (*share).min(demand.cap()).min(room).max(1);
            spent += *share;
        }
        for (entry, share) in self.live.iter().zip(&shares) {
            entry.budget.set_target(*share, now);
        }
        self.rebalances += 1;
    }

    /// The current target of every live job, in admission order (for
    /// introspection and tests).
    pub fn live_targets(&self) -> Vec<(JobId, usize)> {
        self.live
            .iter()
            .map(|e| (e.demand.job, e.budget.target()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{EqualShare, PriorityWeighted};

    fn demand(job: JobId, priority: u32, min: usize, max: usize) -> JobDemand {
        JobDemand {
            job,
            priority,
            min_pages: min,
            max_pages: max,
        }
    }

    #[test]
    fn admission_sets_every_live_target() {
        let mut broker = MemoryBroker::new(24, Arc::new(EqualShare));
        let a = MemoryBudget::new(0);
        let b = MemoryBudget::new(0);
        broker.admit(demand(1, 1, 2, 100), a.clone(), 0.0);
        assert_eq!(a.target(), 24, "lone job gets the whole pool");
        let va = a.version();
        broker.admit(demand(2, 1, 2, 100), b.clone(), 1.0);
        assert_eq!(a.target(), 12);
        assert_eq!(b.target(), 12);
        assert!(a.version() > va, "existing job saw a reallocation");
        assert_eq!(broker.rebalances(), 2);
    }

    #[test]
    fn release_returns_memory_to_survivors() {
        let mut broker = MemoryBroker::new(24, Arc::new(EqualShare));
        let a = MemoryBudget::new(0);
        let b = MemoryBudget::new(0);
        broker.admit(demand(1, 1, 2, 100), a.clone(), 0.0);
        broker.admit(demand(2, 1, 2, 100), b.clone(), 0.0);
        broker.release(1, 1.0);
        assert_eq!(broker.live_count(), 1);
        assert_eq!(b.target(), 24);
        // Idempotent: releasing again neither panics nor rebalances.
        let r = broker.rebalances();
        broker.release(1, 2.0);
        assert_eq!(broker.rebalances(), r);
    }

    #[test]
    fn resize_moves_all_targets() {
        let mut broker = MemoryBroker::new(32, Arc::new(PriorityWeighted));
        let a = MemoryBudget::new(0);
        let b = MemoryBudget::new(0);
        broker.admit(demand(1, 3, 1, 100), a.clone(), 0.0);
        broker.admit(demand(2, 1, 1, 100), b.clone(), 0.0);
        assert!(a.target() > b.target());
        broker.resize(8, 1.0);
        assert!(a.target() + b.target() <= 8);
        assert!(a.target() >= 1 && b.target() >= 1);
    }

    #[test]
    fn can_admit_tracks_committed_minimums() {
        let mut broker = MemoryBroker::new(10, Arc::new(EqualShare));
        assert!(broker.can_admit(10));
        assert!(!broker.can_admit(11));
        broker.admit(demand(1, 1, 6, 100), MemoryBudget::new(0), 0.0);
        assert!(broker.can_admit(4));
        assert!(!broker.can_admit(5));
        broker.release(1, 1.0);
        assert!(broker.can_admit(10));
    }

    #[test]
    fn degenerate_zero_demand_still_gets_exactly_its_one_page_cap() {
        // A standalone-broker user can register min = max = 0; the one-page
        // floor then coincides with the (floored) cap instead of exceeding it.
        let mut broker = MemoryBroker::new(8, Arc::new(EqualShare));
        let zero = MemoryBudget::new(0);
        let normal = MemoryBudget::new(0);
        broker.admit(demand(1, 1, 0, 0), zero.clone(), 0.0);
        broker.admit(demand(2, 1, 1, 100), normal.clone(), 0.0);
        assert_eq!(zero.target(), 1, "floored cap is one page");
        assert_eq!(normal.target(), 7, "the rest flows to the real job");
    }

    #[test]
    fn live_sorts_never_starve_below_one_page() {
        let mut broker = MemoryBroker::new(16, Arc::new(EqualShare));
        let budgets: Vec<MemoryBudget> = (0..4).map(|_| MemoryBudget::new(0)).collect();
        for (i, b) in budgets.iter().enumerate() {
            broker.admit(demand(i as JobId, 1, 2, 100), b.clone(), 0.0);
        }
        // Operator panic-shrinks the pool below the live-sort count.
        broker.resize(2, 1.0);
        for b in &budgets {
            assert!(b.target() >= 1, "a live sort was starved to zero pages");
        }
    }
}
