//! Tickets: the handle a caller holds while a submitted sort is queued and
//! running, and the report it redeems for when the sort finishes.

use crate::service::{ServiceStore, Shared};
use crate::stats::JobStats;
use masort_core::sync::{Condvar, Mutex, MutexGuard};
use masort_core::{
    MemoryBudget, SortCompletion, SortError, SortOutcome, SortResult, SortedStream, Tuple,
};
use std::sync::{Arc, Weak};
use std::time::Duration;

/// Identifier of a job within one [`SortService`](crate::SortService)
/// (assigned in submission order, starting at 0).
pub type JobId = u64;

/// Cancellation state shared between a ticket and the worker running its job.
/// The mutex serialises [`TicketShared::attach_budget`] against
/// [`TicketShared::request_cancel`], so a cancel landing while the job is
/// being admitted reaches the budget no matter which side wins the race.
#[derive(Debug, Default)]
struct CancelSlot {
    requested: bool,
    budget: Option<MemoryBudget>,
}

/// The shared completion slot between a worker thread and the ticket holder.
#[derive(Debug, Default)]
pub(crate) struct TicketShared {
    slot: Mutex<Option<SortResult<JobReport>>>,
    cv: Condvar,
    cancel: Mutex<CancelSlot>,
}

impl TicketShared {
    fn lock(&self) -> MutexGuard<'_, Option<SortResult<JobReport>>> {
        self.slot.lock()
    }

    /// Deliver the job's result and wake every waiter. Must be called at most
    /// once per ticket.
    pub(crate) fn fulfill(&self, result: SortResult<JobReport>) {
        let mut g = self.lock();
        debug_assert!(g.is_none(), "ticket fulfilled twice");
        *g = Some(result);
        self.cv.notify_all();
    }

    /// Called by the admitting worker (under the service state lock): make
    /// the job's budget reachable from the ticket. A cancel requested while
    /// the job was still queued is applied to the budget right here, so the
    /// sort aborts at its first adaptivity checkpoint.
    pub(crate) fn attach_budget(&self, budget: MemoryBudget) {
        let mut g = self.cancel.lock();
        if g.requested {
            budget.cancel();
        }
        g.budget = Some(budget);
    }

    /// Called by [`SortTicket::cancel`]: flag the job as cancelled and, if it
    /// is already running, cancel its budget.
    pub(crate) fn request_cancel(&self) {
        let mut g = self.cancel.lock();
        g.requested = true;
        if let Some(budget) = &g.budget {
            budget.cancel();
        }
    }

    /// Whether a cancel was ever requested for this job. The worker uses it
    /// to classify the job's final error: a cancelled sort usually aborts at
    /// a budget checkpoint with `SortError::Cancelled`, but one blocked on a
    /// streaming input can instead surface the I/O error of its abandoned
    /// channel — the caller asked for a cancel either way.
    pub(crate) fn cancel_requested(&self) -> bool {
        self.cancel.lock().requested
    }
}

/// A claim on the result of one submitted sort.
///
/// Returned by [`SortService::submit`](crate::SortService::submit). Redeem it
/// with [`wait`](Self::wait) (blocking) or poll with
/// [`is_done`](Self::is_done) / [`wait_timeout`](Self::wait_timeout). The
/// ticket is independent of the service handle: it can be sent to another
/// thread and outlives `SortService` shutdown (queued work is drained before
/// the workers exit, so every ticket is eventually fulfilled).
#[derive(Debug)]
pub struct SortTicket {
    job: JobId,
    shared: Arc<TicketShared>,
    service: Weak<Shared>,
}

impl SortTicket {
    pub(crate) fn new(job: JobId, shared: Arc<TicketShared>, service: Weak<Shared>) -> Self {
        SortTicket {
            job,
            shared,
            service,
        }
    }

    /// The service-assigned identifier of this job.
    pub fn job_id(&self) -> JobId {
        self.job
    }

    /// Cancel this job. Returns `true` if the cancellation took effect,
    /// `false` if the job had already finished (its report is still
    /// redeemable with [`wait`](Self::wait)).
    ///
    /// A job still **queued** is removed from the admission queue on the spot
    /// and this ticket resolves to [`SortError::Cancelled`] immediately — it
    /// never reserves pages or compute threads. A job already **running** has
    /// its [`MemoryBudget`] flagged; the sort observes the flag at its next
    /// adaptivity checkpoint (the same points where it polls for memory
    /// changes), aborts with [`SortError::Cancelled`], and releases every
    /// page it held back to the pool.
    pub fn cancel(&self) -> bool {
        if self.is_done() {
            return false;
        }
        // Flag first: if the job is admitted concurrently, the admitting
        // worker sees the flag when it attaches the budget and the sort
        // aborts at its first checkpoint.
        self.shared.request_cancel();
        if let Some(service) = self.service.upgrade() {
            if service.cancel_queued(self.job) {
                // Removed from the queue under the service lock: no worker
                // will ever see this request, so the ticket is ours to
                // resolve.
                self.shared.fulfill(Err(SortError::Cancelled));
                return true;
            }
        }
        !self.is_done()
    }

    /// True once the job has finished (successfully or not) and
    /// [`wait`](Self::wait) would return without blocking.
    pub fn is_done(&self) -> bool {
        self.shared.lock().is_some()
    }

    /// Block until the sort completes, then return its report (or the error
    /// that stopped it — I/O failures, `BudgetStarved` rejections after a
    /// pool shrink, ...).
    pub fn wait(self) -> SortResult<JobReport> {
        let mut g = self.shared.lock();
        loop {
            if let Some(result) = g.take() {
                return result;
            }
            g = self.shared.cv.wait(g);
        }
    }

    /// Like [`wait`](Self::wait), but give up after `timeout`, handing the
    /// ticket back so the caller can retry.
    pub fn wait_timeout(self, timeout: Duration) -> Result<SortResult<JobReport>, SortTicket> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.shared.lock();
        loop {
            if let Some(result) = g.take() {
                return Ok(result);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                drop(g);
                return Err(self);
            }
            let (guard, _timed_out) = self.shared.cv.wait_timeout(g, deadline - now);
            g = guard;
        }
    }
}

/// Everything a finished sort hands back: the core
/// [`SortCompletion`] (outcome + the store holding the output run) plus the
/// broker's per-job statistics.
#[derive(Debug)]
pub struct JobReport {
    /// The sort's outcome and output store; stream or collect it exactly as
    /// with a standalone [`SortJob`](masort_core::SortJob).
    pub completion: SortCompletion<ServiceStore>,
    /// Broker-side statistics: queue wait, reallocations, delay samples.
    pub stats: JobStats,
    /// Observability handle bound to this job's span
    /// ([`job_span`](crate::job_span)`(stats.job)`). Disabled — and
    /// recording nothing — unless the service was built with
    /// [`trace`](crate::SortServiceBuilder::trace); when enabled, the job's
    /// full event timeline is
    /// `trace.recorder().unwrap().events_for(trace.span())`.
    pub trace: masort_trace::Trace,
}

impl JobReport {
    /// The sort outcome (runs formed, merge statistics, response time, ...).
    pub fn outcome(&self) -> &SortOutcome {
        &self.completion.outcome
    }

    /// Stream the sorted result page by page.
    pub fn into_stream(self) -> SortedStream<ServiceStore> {
        self.completion.into_stream()
    }

    /// Materialise the sorted result (convenience for small relations).
    pub fn into_sorted_vec(self) -> Result<Vec<Tuple>, SortError> {
        self.completion.into_sorted_vec()
    }
}
