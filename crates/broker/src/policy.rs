//! Pluggable arbitration policies: how the global page pool is divided among
//! the live sorts.
//!
//! A policy is a pure function from *(pool size, live-job demands)* to a share
//! per job. The [`MemoryBroker`](crate::MemoryBroker) invokes it on every
//! admission, completion and pool resize and pushes the resulting shares into
//! each sort's [`MemoryBudget`](masort_core::MemoryBudget) — the sorts then
//! grow, shrink, suspend, page or split to honour their new target, exactly as
//! they do under the paper's simulated buffer manager.
//!
//! Three policies ship with the crate:
//!
//! * [`EqualShare`] — ignore priorities; split the pool evenly.
//! * [`PriorityWeighted`] — surplus above the minimums is divided in
//!   proportion to job priority.
//! * [`MinGuarantee`] — every job gets exactly its guaranteed minimum, and the
//!   surplus is redistributed greedily in strict priority order (the highest
//!   priority job is filled to its maximum before the next sees a page).
//!
//! All three honour the same two floors: a live sort never drops below its
//! `min_pages` while the pool can cover the live minimums (admission control
//! guarantees this), and never below one page even when an operator shrinks
//! the pool under the committed minimums.

use crate::ticket::JobId;

/// The memory demand one live sort presents to the arbitration policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobDemand {
    /// The job this demand belongs to.
    pub job: JobId,
    /// Scheduling priority (larger = more important, minimum effective
    /// weight 1).
    pub priority: u32,
    /// Pages this sort is guaranteed while it runs (admission control holds a
    /// request back until the pool can cover it).
    pub min_pages: usize,
    /// Pages beyond which extra memory is wasted on this sort (typically the
    /// configured `memory_pages`).
    pub max_pages: usize,
}

impl JobDemand {
    /// The cap actually used when dividing: `max_pages`, but never below
    /// `min_pages` (so inconsistent demands stay satisfiable) and never below
    /// one page (a live sort holding zero pages cannot make progress, so the
    /// broker's one-page floor is always within the cap).
    pub fn cap(&self) -> usize {
        self.max_pages.max(self.min_pages).max(1)
    }
}

/// How the global page pool is divided among live sorts.
///
/// Implementations must be deterministic pure functions of their inputs (the
/// broker may re-invoke them at any time) and must return exactly
/// `jobs.len()` shares. They should aim for `sum(shares) <= pool_pages` and
/// respect each job's `[min_pages, cap()]` range when the pool allows; the
/// broker defensively clamps whatever comes back, so a misbehaving policy can
/// degrade sharing quality but cannot over- or under-commit the pool by more
/// than one page per live sort.
pub trait ArbitrationPolicy: Send + Sync {
    /// Short, stable policy name (used in stats output and benchmarks).
    fn name(&self) -> &'static str;

    /// Divide `pool_pages` among `jobs`, returning one share per job in the
    /// same order.
    fn divide(&self, pool_pages: usize, jobs: &[JobDemand]) -> Vec<usize>;
}

/// Give every job its minimum, then return the undistributed surplus.
///
/// When the pool cannot cover the minimums (an operator shrank it below the
/// committed floor), the pool is instead divided in proportion to the
/// minimums, and the surplus is zero.
fn grant_minimums(pool_pages: usize, jobs: &[JobDemand]) -> (Vec<usize>, usize) {
    let total_min: usize = jobs.iter().map(|j| j.min_pages).sum();
    if total_min <= pool_pages {
        let shares: Vec<usize> = jobs.iter().map(|j| j.min_pages).collect();
        (shares, pool_pages - total_min)
    } else {
        let mut shares = vec![0usize; jobs.len()];
        let caps: Vec<usize> = jobs.iter().map(|j| j.min_pages).collect();
        let weights: Vec<u64> = jobs.iter().map(|j| j.min_pages.max(1) as u64).collect();
        distribute(&mut shares, &caps, &weights, pool_pages);
        (shares, 0)
    }
}

/// Distribute `amount` pages across `shares`, proportionally to `weights`,
/// never pushing `shares[i]` above `caps[i]`. Deterministic; leftover pages
/// from integer rounding go to the earliest still-open jobs.
fn distribute(shares: &mut [usize], caps: &[usize], weights: &[u64], mut amount: usize) {
    while amount > 0 {
        let open: Vec<usize> = (0..shares.len()).filter(|&i| shares[i] < caps[i]).collect();
        if open.is_empty() {
            return;
        }
        let total_w: u64 = open.iter().map(|&i| weights[i].max(1)).sum();
        let round = amount;
        let mut given = 0usize;
        for &i in &open {
            let w = weights[i].max(1);
            let want = ((round as u128 * w as u128) / total_w as u128) as usize;
            let give = want.min(caps[i] - shares[i]).min(amount - given);
            shares[i] += give;
            given += give;
        }
        if given == 0 {
            // Rounding starved everyone: hand out the remainder one page at a
            // time, front to back.
            for &i in &open {
                if amount == 0 {
                    return;
                }
                if shares[i] < caps[i] {
                    shares[i] += 1;
                    amount -= 1;
                }
            }
            continue;
        }
        amount -= given;
    }
}

/// Divide the pool evenly among live sorts, ignoring priorities.
///
/// Every job is floored at its minimum; the surplus above the minimums is
/// split in equal parts (capped per job at its maximum, with the remainder
/// flowing to jobs that still have room).
#[derive(Clone, Copy, Debug, Default)]
pub struct EqualShare;

impl ArbitrationPolicy for EqualShare {
    fn name(&self) -> &'static str {
        "equal-share"
    }

    fn divide(&self, pool_pages: usize, jobs: &[JobDemand]) -> Vec<usize> {
        let (mut shares, surplus) = grant_minimums(pool_pages, jobs);
        let caps: Vec<usize> = jobs.iter().map(JobDemand::cap).collect();
        let weights = vec![1u64; jobs.len()];
        distribute(&mut shares, &caps, &weights, surplus);
        shares
    }
}

/// Divide the surplus above the minimums in proportion to job priority.
///
/// A priority-10 sort receives ten times the surplus of a priority-1 sort
/// (subject to its maximum); priorities of zero count as one so no job is
/// starved of surplus entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct PriorityWeighted;

impl ArbitrationPolicy for PriorityWeighted {
    fn name(&self) -> &'static str {
        "priority-weighted"
    }

    fn divide(&self, pool_pages: usize, jobs: &[JobDemand]) -> Vec<usize> {
        let (mut shares, surplus) = grant_minimums(pool_pages, jobs);
        let caps: Vec<usize> = jobs.iter().map(JobDemand::cap).collect();
        let weights: Vec<u64> = jobs.iter().map(|j| u64::from(j.priority.max(1))).collect();
        distribute(&mut shares, &caps, &weights, surplus);
        shares
    }
}

/// Guarantee every job its minimum, then redistribute the surplus greedily in
/// strict priority order.
///
/// The highest-priority job is filled up to its maximum before the
/// next-highest sees a single surplus page (ties break towards the job
/// admitted first). Under contention this concentrates memory on few sorts —
/// the regime in which the paper's algorithms degrade most gracefully — at
/// the cost of fairness.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinGuarantee;

impl ArbitrationPolicy for MinGuarantee {
    fn name(&self) -> &'static str {
        "min-guarantee"
    }

    fn divide(&self, pool_pages: usize, jobs: &[JobDemand]) -> Vec<usize> {
        let (mut shares, mut surplus) = grant_minimums(pool_pages, jobs);
        let mut order: Vec<usize> = (0..jobs.len()).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].priority), i));
        for i in order {
            if surplus == 0 {
                break;
            }
            let give = jobs[i].cap().saturating_sub(shares[i]).min(surplus);
            shares[i] += give;
            surplus -= give;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demand(job: JobId, priority: u32, min: usize, max: usize) -> JobDemand {
        JobDemand {
            job,
            priority,
            min_pages: min,
            max_pages: max,
        }
    }

    fn check_invariants(policy: &dyn ArbitrationPolicy, pool: usize, jobs: &[JobDemand]) {
        let shares = policy.divide(pool, jobs);
        assert_eq!(shares.len(), jobs.len(), "{}: wrong arity", policy.name());
        let total: usize = shares.iter().sum();
        assert!(
            total <= pool,
            "{}: overcommitted {total} > {pool}",
            policy.name()
        );
        let total_min: usize = jobs.iter().map(|j| j.min_pages).sum();
        for (s, j) in shares.iter().zip(jobs) {
            assert!(*s <= j.cap(), "{}: share {s} above cap", policy.name());
            if total_min <= pool {
                assert!(
                    *s >= j.min_pages,
                    "{}: share {s} below guaranteed min {}",
                    policy.name(),
                    j.min_pages
                );
            }
        }
        // Pool is not wasted: if some job still has room, the whole pool (up
        // to the sum of caps) was handed out.
        let total_cap: usize = jobs.iter().map(JobDemand::cap).sum();
        if total_min <= pool {
            assert_eq!(
                total,
                pool.min(total_cap),
                "{}: left pages on the table",
                policy.name()
            );
        }
    }

    fn policies() -> Vec<Box<dyn ArbitrationPolicy>> {
        vec![
            Box::new(EqualShare),
            Box::new(PriorityWeighted),
            Box::new(MinGuarantee),
        ]
    }

    #[test]
    fn invariants_hold_over_a_demand_sweep() {
        for policy in policies() {
            for pool in [0usize, 1, 3, 7, 16, 33, 100] {
                for njobs in 0usize..6 {
                    let jobs: Vec<JobDemand> = (0..njobs)
                        .map(|i| demand(i as JobId, (i % 3) as u32, 1 + i % 4, 4 + (i * 7) % 20))
                        .collect();
                    check_invariants(policy.as_ref(), pool, &jobs);
                }
            }
        }
    }

    #[test]
    fn equal_share_splits_evenly() {
        let jobs = [demand(1, 5, 1, 100), demand(2, 1, 1, 100)];
        let shares = EqualShare.divide(20, &jobs);
        assert_eq!(shares, vec![10, 10], "priority must not matter");
    }

    #[test]
    fn priority_weighted_is_proportional() {
        let jobs = [demand(1, 3, 0, 100), demand(2, 1, 0, 100)];
        let shares = PriorityWeighted.divide(40, &jobs);
        assert_eq!(shares.iter().sum::<usize>(), 40);
        assert!(
            shares[0] >= 3 * shares[1] - 1,
            "priority 3 should get ~3x of priority 1: {shares:?}"
        );
    }

    #[test]
    fn min_guarantee_fills_highest_priority_first() {
        let jobs = [
            demand(1, 1, 2, 10),
            demand(2, 9, 2, 10),
            demand(3, 5, 2, 10),
        ];
        let shares = MinGuarantee.divide(16, &jobs);
        // mins: 2,2,2 -> surplus 10: job 2 (prio 9) to its cap (+8), then
        // job 3 (prio 5) gets the remaining 2.
        assert_eq!(shares, vec![2, 10, 4]);
    }

    #[test]
    fn surplus_respects_caps_and_overflows_to_others() {
        let jobs = [demand(1, 9, 1, 3), demand(2, 1, 1, 100)];
        for policy in policies() {
            let shares = policy.divide(30, &jobs);
            assert_eq!(shares[0], 3, "{}: cap ignored", policy.name());
            assert_eq!(shares[1], 27, "{}: overflow lost", policy.name());
        }
    }

    #[test]
    fn infeasible_pool_degrades_proportionally_to_minimums() {
        // Pool shrank below the committed minimums: every policy falls back
        // to dividing what is left in proportion to the minimums.
        let jobs = [demand(1, 1, 8, 20), demand(2, 1, 4, 20)];
        for policy in policies() {
            let shares = policy.divide(6, &jobs);
            assert_eq!(shares.iter().sum::<usize>(), 6, "{}", policy.name());
            assert!(shares[0] >= shares[1], "{}: {shares:?}", policy.name());
        }
    }

    #[test]
    fn empty_job_list_divides_to_nothing() {
        for policy in policies() {
            assert!(policy.divide(64, &[]).is_empty());
        }
    }
}
