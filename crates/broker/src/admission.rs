//! Admission control: requests queue until their guaranteed minimum share is
//! actually available.
//!
//! A request whose `min_pages` fits alongside the minimums already committed
//! to live sorts is admitted immediately; otherwise it waits in the queue and
//! is reconsidered on every completion and pool resize. Requests that can
//! *never* be admitted (`min_pages` larger than the whole pool) are rejected
//! with [`SortError::BudgetStarved`](masort_core::SortError::BudgetStarved)
//! instead of deadlocking — at submission time, or retroactively when an
//! operator shrinks the pool below a queued request's minimum.
//!
//! Admission is first-fit in FIFO order with **bounded bypass**: a small
//! request may overtake a larger one stuck ahead of it, but only
//! [`MAX_BYPASS`] times. After that the starved request becomes a *barrier* —
//! nothing behind it is admitted any more — so under a continuous stream of
//! small submissions the live sorts drain, the committed minimums shrink, and
//! the large request is guaranteed to run.

use crate::broker::MemoryBroker;
use crate::service::RunStorage;
use crate::ticket::{JobId, TicketShared};
use masort_core::{InputSource, SortConfig};
use std::collections::VecDeque;
use std::sync::Arc;

/// A submitted sort waiting for admission.
pub(crate) struct QueuedRequest {
    pub job: JobId,
    pub cfg: SortConfig,
    pub input: Box<dyn InputSource + Send>,
    pub storage: RunStorage,
    pub tenant: Option<String>,
    pub priority: u32,
    pub min_pages: usize,
    pub max_pages: usize,
    pub ticket: Arc<TicketShared>,
    pub submitted_at: f64,
    /// Times a younger request has been admitted past this one. At
    /// [`MAX_BYPASS`] the request becomes a barrier (see module docs).
    pub bypassed: u32,
}

/// How many times a queued request may be overtaken by younger requests
/// before it blocks everything behind it. Large enough to keep the pool busy
/// through a burst, small enough that a big request is not starved for long.
pub(crate) const MAX_BYPASS: u32 = 16;

impl std::fmt::Debug for QueuedRequest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueuedRequest")
            .field("job", &self.job)
            .field("priority", &self.priority)
            .field("min_pages", &self.min_pages)
            .field("max_pages", &self.max_pages)
            .finish()
    }
}

/// FIFO queue with first-fit admission against a [`MemoryBroker`].
#[derive(Debug, Default)]
pub(crate) struct AdmissionQueue {
    queue: VecDeque<QueuedRequest>,
}

impl AdmissionQueue {
    pub fn push(&mut self, req: QueuedRequest) {
        self.queue.push_back(req);
    }

    pub fn len(&self) -> usize {
        self.queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Remove and return the first queued request whose minimum the broker
    /// can currently guarantee, never admitting past a request that has
    /// already been bypassed [`MAX_BYPASS`] times (bounded bypass — see the
    /// module docs for the starvation argument).
    pub fn pop_admissible(&mut self, broker: &MemoryBroker) -> Option<QueuedRequest> {
        let barrier = self.queue.iter().position(|r| r.bypassed >= MAX_BYPASS);
        let candidates = barrier.map_or(self.queue.len(), |b| b + 1);
        let idx = self
            .queue
            .iter()
            .take(candidates)
            .position(|r| broker.can_admit(r.min_pages))?;
        for overtaken in self.queue.iter_mut().take(idx) {
            overtaken.bypassed += 1;
        }
        self.queue.remove(idx)
    }

    /// Remove (and return) the queued request with identifier `job`, e.g.
    /// because its ticket was cancelled before admission. `None` if the job
    /// is not queued — never submitted, already admitted, or already done.
    pub fn remove(&mut self, job: JobId) -> Option<QueuedRequest> {
        let idx = self.queue.iter().position(|r| r.job == job)?;
        self.queue.remove(idx)
    }

    /// Drain every queued request whose minimum exceeds `pool_pages` (it can
    /// never be admitted any more); the caller fails their tickets with
    /// `BudgetStarved`.
    pub fn drain_impossible(&mut self, pool_pages: usize) -> Vec<QueuedRequest> {
        let mut doomed = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            if self.queue[i].min_pages > pool_pages {
                if let Some(r) = self.queue.remove(i) {
                    doomed.push(r);
                }
            } else {
                i += 1;
            }
        }
        doomed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::EqualShare;
    use masort_core::VecSource;

    fn req(job: JobId, min: usize) -> QueuedRequest {
        QueuedRequest {
            job,
            cfg: SortConfig::default(),
            input: Box::new(VecSource::from_pages(Vec::new())),
            storage: RunStorage::InMemory,
            tenant: None,
            priority: 1,
            min_pages: min,
            max_pages: min.max(8),
            ticket: Arc::new(TicketShared::default()),
            submitted_at: 0.0,
            bypassed: 0,
        }
    }

    #[test]
    fn first_fit_lets_small_requests_bypass_a_stuck_head() {
        let broker = MemoryBroker::new(10, Arc::new(EqualShare));
        let mut q = AdmissionQueue::default();
        q.push(req(1, 99)); // cannot fit in a 10-page pool alongside nothing? (99 > 10)
        q.push(req(2, 4));
        let picked = q.pop_admissible(&broker).expect("job 2 fits");
        assert_eq!(picked.job, 2);
        assert_eq!(q.len(), 1);
        assert!(q.pop_admissible(&broker).is_none(), "head still stuck");
    }

    #[test]
    fn bypass_is_bounded_so_a_large_request_cannot_starve() {
        // A 10-page pool with a 4-page job live: an 8-page request cannot be
        // admitted, but a stream of small requests can. After MAX_BYPASS
        // overtakes the large request becomes a barrier and the small ones
        // queue behind it, however admissible they are.
        let mut broker = MemoryBroker::new(10, Arc::new(EqualShare));
        broker.admit(
            crate::policy::JobDemand {
                job: 0,
                priority: 1,
                min_pages: 4,
                max_pages: 8,
            },
            masort_core::MemoryBudget::new(4),
            0.0,
        );
        let mut q = AdmissionQueue::default();
        q.push(req(1, 8));
        for i in 0..MAX_BYPASS {
            q.push(req(100 + i as JobId, 2));
            let picked = q.pop_admissible(&broker).expect("small request fits");
            assert_eq!(picked.job, 100 + i as JobId);
        }
        // The bound is reached: an admissible small request now waits.
        q.push(req(999, 2));
        assert!(
            q.pop_admissible(&broker).is_none(),
            "bypass bound was not enforced"
        );
        // The moment the live job finishes, the starved request runs first.
        broker.release(0, 1.0);
        assert_eq!(q.pop_admissible(&broker).unwrap().job, 1);
        assert_eq!(q.pop_admissible(&broker).unwrap().job, 999);
    }

    #[test]
    fn remove_takes_out_exactly_the_named_job() {
        let mut q = AdmissionQueue::default();
        q.push(req(1, 2));
        q.push(req(2, 3));
        q.push(req(3, 4));
        assert_eq!(q.remove(2).unwrap().job, 2);
        assert!(q.remove(2).is_none(), "already removed");
        assert!(q.remove(99).is_none(), "never queued");
        assert_eq!(q.len(), 2);
        let broker = MemoryBroker::new(10, Arc::new(EqualShare));
        assert_eq!(q.pop_admissible(&broker).unwrap().job, 1);
        assert_eq!(q.pop_admissible(&broker).unwrap().job, 3);
    }

    #[test]
    fn drain_impossible_removes_only_oversized_requests() {
        let mut q = AdmissionQueue::default();
        q.push(req(1, 2));
        q.push(req(2, 50));
        q.push(req(3, 5));
        q.push(req(4, 51));
        let doomed = q.drain_impossible(10);
        let ids: Vec<JobId> = doomed.iter().map(|r| r.job).collect();
        assert_eq!(ids, vec![2, 4]);
        assert_eq!(q.len(), 2);
    }
}
