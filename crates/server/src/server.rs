//! The server: a TCP accept loop in front of one [`SortService`].
//!
//! Every accepted connection becomes a session on its own
//! thread; the sort itself still runs on the service's bounded worker pool,
//! so hundreds of connections contend for the same page pool and the same
//! workers — exactly the multi-query pressure the paper's broker arbitrates.
//!
//! Shutdown is cooperative: a flag flips (via [`ServerHandle::shutdown`] or
//! a `SHUTDOWN` frame), the accept loop stops taking connections, parked
//! sessions notice at their next read tick, in-flight sorts drain, and the
//! underlying service is torn down only after every session thread has been
//! joined.

use masort_core::sync::atomic::{AtomicBool, Ordering};
use masort_core::sync::thread::{self, JoinHandle};
use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use masort_broker::{
    job_span, EqualShare, MinGuarantee, PriorityWeighted, ServiceStats, SortService,
};
use masort_core::SortConfig;
use masort_trace::{metrics_to_json, trace_to_json, MetricsRegistry, Recorder, Trace};

use crate::protocol::ServerSummary;
use crate::session::run_session;
use crate::tenant::{TenantQuota, TenantRegistry};

/// How often the accept loop wakes to re-check the shutdown flag.
const ACCEPT_TICK: Duration = Duration::from_millis(50);

/// Which shipped arbitration policy the service should run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PolicyChoice {
    /// Every live sort gets the same share ([`EqualShare`]).
    EqualShare,
    /// Shares proportional to priority ([`PriorityWeighted`]).
    #[default]
    PriorityWeighted,
    /// Minimums first, leftovers by priority ([`MinGuarantee`]).
    MinGuarantee,
}

impl FromStr for PolicyChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "equal" | "equal-share" => Ok(PolicyChoice::EqualShare),
            "priority" | "priority-weighted" => Ok(PolicyChoice::PriorityWeighted),
            "min-guarantee" => Ok(PolicyChoice::MinGuarantee),
            other => Err(format!(
                "unknown policy `{other}` (expected equal, priority or min-guarantee)"
            )),
        }
    }
}

/// Everything a session needs from the server, shared across session threads.
pub(crate) struct ServerShared {
    /// The brokered sort service all sessions submit into.
    pub(crate) service: SortService,
    /// Tenant quotas and live-job accounting.
    pub(crate) tenants: TenantRegistry,
    /// Cooperative shutdown flag, also held by [`ServerHandle`].
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Defaults a `SUBMIT` frame's zero fields fall back to.
    pub(crate) base_cfg: SortConfig,
    /// Bound of each sort's ingest channel, in pages.
    pub(crate) ingest_depth: usize,
    /// Tuples per `EGRESS` frame.
    pub(crate) egress_chunk: usize,
    /// Always-enabled observability handle: the service and every job feed
    /// the recorder + registry this handle wraps, and `TRACE_REQ` /
    /// `METRICS_REQ` frames are answered from it.
    pub(crate) trace: Trace,
}

impl ServerShared {
    /// Snapshot of the service-wide counters in wire form.
    pub(crate) fn summary(&self) -> ServerSummary {
        let stats = self.service.stats();
        ServerSummary {
            pool_pages: self.service.pool_pages() as u64,
            live_jobs: self.service.live_jobs() as u64,
            queued_jobs: self.service.queued_jobs() as u64,
            submitted: stats.submitted,
            completed: stats.completed,
            failed: stats.failed,
            rejected: stats.rejected,
            cancelled: stats.cancelled,
            leaked_pages: stats.leaked_pages,
            total_reallocations: stats.total_reallocations,
        }
    }

    /// One job's event timeline as a pretty-printed JSON document
    /// (the `TRACE_DATA` payload).
    pub(crate) fn trace_json(&self, job: u64) -> String {
        let recorder = self
            .trace
            .recorder()
            .expect("server trace handle is always enabled");
        trace_to_json(&recorder.snapshot().for_span(job_span(job))).to_pretty_string()
    }

    /// The service-wide metrics registry as a pretty-printed JSON document
    /// (the `METRICS_DATA` payload).
    pub(crate) fn metrics_json(&self) -> String {
        let metrics = self
            .trace
            .metrics()
            .expect("server trace handle is always enabled");
        metrics_to_json(&metrics.snapshot()).to_pretty_string()
    }
}

/// Configures and binds a [`Server`]. Obtain one with [`Server::builder`].
#[derive(Clone)]
pub struct ServerBuilder {
    pool_pages: usize,
    workers: usize,
    policy: PolicyChoice,
    io_threads: usize,
    io_pipeline: usize,
    cpu_threads: usize,
    base_cfg: SortConfig,
    ingest_depth: usize,
    egress_chunk: usize,
    tenants: HashMap<String, TenantQuota>,
}

impl Default for ServerBuilder {
    fn default() -> Self {
        ServerBuilder {
            pool_pages: 64,
            workers: 4,
            policy: PolicyChoice::default(),
            io_threads: 0,
            io_pipeline: 0,
            cpu_threads: 0,
            // The real serving environment defaults adaptive run formation
            // on; the simulator (which reproduces the paper's figures with
            // classic replacement selection) keeps it off.
            base_cfg: SortConfig::default()
                .with_page_size(4096)
                .with_tuple_size(64)
                .with_memory_pages(16)
                .with_adaptive_runs(true),
            ingest_depth: 8,
            egress_chunk: 4096,
            tenants: HashMap::new(),
        }
    }
}

impl ServerBuilder {
    /// Size of the global page pool the broker divides.
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Sort worker threads (concurrent sorts actually executing).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Arbitration policy dividing the pool.
    pub fn policy(mut self, policy: PolicyChoice) -> Self {
        self.policy = policy;
        self
    }

    /// I/O helper threads for the service's read-ahead/write-behind pipeline
    /// (0 = synchronous I/O).
    pub fn io_threads(mut self, n: usize) -> Self {
        self.io_threads = n;
        self
    }

    /// Pipeline depth (in blocks) when I/O threads are enabled.
    pub fn io_pipeline(mut self, depth: usize) -> Self {
        self.io_pipeline = depth;
        self
    }

    /// Extra compute threads the service may lend to splits (0 = none).
    pub fn cpu_threads(mut self, n: usize) -> Self {
        self.cpu_threads = n;
        self
    }

    /// Default sort geometry for `SUBMIT` frames that leave fields at zero.
    pub fn base_config(mut self, cfg: SortConfig) -> Self {
        self.base_cfg = cfg;
        self
    }

    /// Bound of each sort's ingest channel, in pages. Smaller = tighter
    /// backpressure; larger = more slack for bursty clients.
    pub fn ingest_depth(mut self, pages: usize) -> Self {
        self.ingest_depth = pages.max(1);
        self
    }

    /// Tuples per `EGRESS` frame.
    pub fn egress_chunk(mut self, tuples: usize) -> Self {
        self.egress_chunk = tuples.max(1);
        self
    }

    /// Attach a quota to a tenant name.
    pub fn tenant(mut self, name: impl Into<String>, quota: TenantQuota) -> Self {
        self.tenants.insert(name.into(), quota);
        self
    }

    /// Bind the listener and construct the server. `addr` is any standard
    /// socket address; use port 0 to let the OS pick (see
    /// [`Server::local_addr`]).
    pub fn bind(self, addr: impl ToSocketAddrs) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let trace = Trace::enabled(Recorder::new(), MetricsRegistry::new());
        let mut svc = SortService::builder()
            .pool_pages(self.pool_pages)
            .workers(self.workers)
            .io_threads(self.io_threads)
            .io_pipeline(self.io_pipeline)
            .cpu_threads(self.cpu_threads)
            .trace(trace.clone());
        svc = match self.policy {
            PolicyChoice::EqualShare => svc.policy(EqualShare),
            PolicyChoice::PriorityWeighted => svc.policy(PriorityWeighted),
            PolicyChoice::MinGuarantee => svc.policy(MinGuarantee),
        };
        Ok(Server {
            shared: Arc::new(ServerShared {
                service: svc.build(),
                tenants: TenantRegistry::new(self.tenants),
                shutdown: Arc::new(AtomicBool::new(false)),
                base_cfg: self.base_cfg,
                ingest_depth: self.ingest_depth,
                egress_chunk: self.egress_chunk,
                trace,
            }),
            listener,
            addr,
        })
    }
}

/// A bound, not-yet-running sort server. Drive it with [`run`](Self::run)
/// (blocking) or [`spawn`](Self::spawn) (background thread + handle).
pub struct Server {
    shared: Arc<ServerShared>,
    listener: TcpListener,
    addr: SocketAddr,
}

impl Server {
    /// Start configuring a server.
    pub fn builder() -> ServerBuilder {
        ServerBuilder::default()
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Serve connections on the calling thread until shutdown is requested
    /// (a `SHUTDOWN` frame, or the flag from a [`ServerHandle`]). Drains
    /// in-flight sorts, joins every session, tears down the service and
    /// returns its final statistics.
    pub fn run(self) -> ServiceStats {
        let Server {
            shared,
            listener,
            addr: _,
        } = self;
        let mut sessions: Vec<JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::Acquire) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    sessions.push(thread::spawn(move || run_session(&shared, stream)));
                    // Reap finished sessions so a long-lived server does not
                    // accumulate dead join handles.
                    if sessions.len().is_multiple_of(32) {
                        let (done, live): (Vec<_>, Vec<_>) =
                            sessions.drain(..).partition(|h| h.is_finished());
                        for h in done {
                            let _ = h.join();
                        }
                        sessions = live;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_TICK);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => thread::sleep(ACCEPT_TICK),
            }
        }
        drop(listener);
        for h in sessions {
            let _ = h.join();
        }
        // Every session thread has been joined, so this Arc is the last one.
        let shared = Arc::try_unwrap(shared).unwrap_or_else(|_| {
            unreachable!("session threads joined but ServerShared still shared")
        });
        shared.service.shutdown()
    }

    /// Run the accept loop on a background thread and return a handle that
    /// can stop it and collect the final statistics.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let stop = Arc::clone(&self.shared.shutdown);
        let thread = thread::spawn(move || self.run());
        ServerHandle { addr, stop, thread }
    }
}

/// Handle on a [spawned](Server::spawn) server.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: JoinHandle<ServiceStats>,
}

impl ServerHandle {
    /// The address the server is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the server to stop accepting and drain.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Shut down (idempotent) and wait for the server to finish, returning
    /// the service's final statistics.
    pub fn join(self) -> ServiceStats {
        self.shutdown();
        self.thread
            .join()
            .expect("server accept thread should not panic")
    }
}
