//! Byte-level frame encoding and decoding.
//!
//! A frame on the wire is `u32 LE length ++ body`, where `body[0]` is the
//! opcode and the rest is the opcode-specific payload. All integers are
//! little-endian; strings and byte blobs are length-prefixed (`u32 LE` count
//! followed by the raw bytes). Tuples encode as
//! `u64 key ++ u8 payload-tag ++ payload`, where tag `0` is a synthetic
//! payload (`u32` nominal size) and tag `1` is a literal byte blob — so a
//! round trip preserves not just keys but the exact payload representation.
//!
//! Decoding is defensive: every read is bounds-checked against the body, the
//! length prefix is capped at [`MAX_FRAME_BYTES`], unknown opcodes and
//! error codes are rejected, and trailing garbage after a well-formed payload
//! is an error. Malformed input can only ever produce
//! [`io::ErrorKind::InvalidData`] / [`io::ErrorKind::UnexpectedEof`] — never
//! a panic or an oversized allocation.

use masort_core::sync::atomic::{AtomicBool, Ordering};
use std::io::{self, Read, Write};

use masort_core::{Payload, Tuple};

use crate::protocol::{
    ErrorCode, Frame, JobSummary, ServerSummary, SubmitSpec, WireError, MAX_FRAME_BYTES,
};

const TAG_SYNTHETIC: u8 = 0;
const TAG_BYTES: u8 = 1;

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, b: &[u8]) {
    put_u32(buf, b.len() as u32);
    buf.extend_from_slice(b);
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_bytes(buf, s.as_bytes());
}

fn put_tuples(buf: &mut Vec<u8>, tuples: &[Tuple]) {
    put_u32(buf, tuples.len() as u32);
    for t in tuples {
        put_u64(buf, t.key);
        match &t.payload {
            Payload::Synthetic(size) => {
                buf.push(TAG_SYNTHETIC);
                put_u32(buf, *size);
            }
            Payload::Bytes(bytes) => {
                buf.push(TAG_BYTES);
                put_bytes(buf, bytes);
            }
        }
    }
}

/// Encode a frame into its body bytes (opcode byte included, length prefix
/// excluded). [`write_frame`] adds the prefix; this form exists so tests can
/// corrupt bodies directly.
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    buf.push(frame.opcode());
    match frame {
        Frame::Hello { version, tenant } => {
            put_u32(&mut buf, *version);
            match tenant {
                Some(name) => {
                    buf.push(1);
                    put_str(&mut buf, name);
                }
                None => buf.push(0),
            }
        }
        Frame::Welcome {
            version,
            pool_pages,
            policy,
        } => {
            put_u32(&mut buf, *version);
            put_u64(&mut buf, *pool_pages);
            put_str(&mut buf, policy);
        }
        Frame::Submit(spec) => {
            put_u32(&mut buf, spec.priority);
            put_u64(&mut buf, spec.min_pages);
            put_u64(&mut buf, spec.max_pages);
            put_u64(&mut buf, spec.memory_pages);
            put_u64(&mut buf, spec.page_size);
            put_u64(&mut buf, spec.tuple_size);
            put_u32(&mut buf, spec.cpu_threads);
            put_u64(&mut buf, spec.expected_tuples);
            buf.push(spec.spill as u8);
            buf.push(spec.descending as u8);
            // Tri-state, matching the "zero = server default" idiom of the
            // numeric fields: 0 = default, 1 = force on, 2 = force off.
            buf.push(match spec.adaptive {
                None => 0u8,
                Some(true) => 1,
                Some(false) => 2,
            });
        }
        Frame::Accepted { job } => put_u64(&mut buf, *job),
        Frame::Ingest(tuples) | Frame::Egress(tuples) => put_tuples(&mut buf, tuples),
        Frame::Fin | Frame::Cancel | Frame::Shutdown | Frame::StatsReq => {}
        Frame::Stats(s) => {
            put_u64(&mut buf, s.job);
            put_u64(&mut buf, s.tuples);
            put_f64(&mut buf, s.queued_for);
            put_f64(&mut buf, s.ran_for);
            put_u64(&mut buf, s.initial_grant);
            put_u64(&mut buf, s.reallocations);
            put_u64(&mut buf, s.delay_samples);
            put_f64(&mut buf, s.total_delay);
            put_u64(&mut buf, s.runs_formed);
            put_u64(&mut buf, s.merge_steps);
            put_u64(&mut buf, s.natural_runs);
            put_u64(&mut buf, s.min_run_tuples);
            put_u64(&mut buf, s.max_run_tuples);
            put_f64(&mut buf, s.avg_run_tuples);
        }
        Frame::Error(e) => {
            buf.push(e.code as u8);
            put_u64(&mut buf, e.needed);
            put_u64(&mut buf, e.granted);
            put_str(&mut buf, &e.message);
        }
        Frame::ServerStats(s) => {
            put_u64(&mut buf, s.pool_pages);
            put_u64(&mut buf, s.live_jobs);
            put_u64(&mut buf, s.queued_jobs);
            put_u64(&mut buf, s.submitted);
            put_u64(&mut buf, s.completed);
            put_u64(&mut buf, s.failed);
            put_u64(&mut buf, s.rejected);
            put_u64(&mut buf, s.cancelled);
            put_u64(&mut buf, s.leaked_pages);
            put_u64(&mut buf, s.total_reallocations);
        }
        Frame::TraceReq { job } => put_u64(&mut buf, *job),
        Frame::TraceData { json } | Frame::MetricsData { json } => put_str(&mut buf, json),
        Frame::MetricsReq => {}
    }
    buf
}

/// Write one length-prefixed frame. Flushes are the caller's business —
/// batch several frames, then flush once.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    let body = encode_frame(frame);
    if body.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "{} frame body is {} bytes, over the {} byte frame cap",
                frame.name(),
                body.len(),
                MAX_FRAME_BYTES
            ),
        ));
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&body)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn bad(what: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed frame: truncated {what}"),
        )
    }

    fn take(&mut self, n: usize, what: &str) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(Self::bad(what)),
        }
    }

    fn u8(&mut self, what: &str) -> io::Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn f64(&mut self, what: &str) -> io::Result<f64> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn bytes(&mut self, what: &str) -> io::Result<Vec<u8>> {
        let len = self.u32(what)? as usize;
        // A blob cannot be longer than the bytes that remain: reject before
        // allocating, so a corrupt count cannot request gigabytes.
        if len > self.buf.len() - self.pos {
            return Err(Self::bad(what));
        }
        Ok(self.take(len, what)?.to_vec())
    }

    fn string(&mut self, what: &str) -> io::Result<String> {
        String::from_utf8(self.bytes(what)?).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed frame: {what} is not UTF-8"),
            )
        })
    }

    fn bool(&mut self, what: &str) -> io::Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed frame: {what} flag byte is {v}, expected 0 or 1"),
            )),
        }
    }

    fn tuples(&mut self) -> io::Result<Vec<Tuple>> {
        let count = self.u32("tuple count")? as usize;
        // Each tuple takes at least key (8) + tag (1) + payload body (4).
        if count > (self.buf.len() - self.pos) / 13 {
            return Err(Self::bad("tuple list"));
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let key = self.u64("tuple key")?;
            let payload = match self.u8("payload tag")? {
                TAG_SYNTHETIC => Payload::Synthetic(self.u32("synthetic payload size")?),
                TAG_BYTES => Payload::Bytes(self.bytes("payload bytes")?),
                tag => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed frame: unknown payload tag {tag}"),
                    ))
                }
            };
            out.push(Tuple { key, payload });
        }
        Ok(out)
    }

    fn finish(self, frame: &'static str) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "malformed frame: {} trailing bytes after {frame} payload",
                    self.buf.len() - self.pos
                ),
            ))
        }
    }
}

/// Decode one frame body (as produced by [`encode_frame`]). Rejects unknown
/// opcodes, truncated payloads and trailing garbage with
/// [`io::ErrorKind::InvalidData`].
pub fn decode_frame(body: &[u8]) -> io::Result<Frame> {
    let mut c = Cursor::new(body);
    let opcode = c.u8("opcode")?;
    let frame = match opcode {
        0x01 => {
            let version = c.u32("HELLO version")?;
            let tenant = if c.bool("HELLO tenant flag")? {
                Some(c.string("HELLO tenant")?)
            } else {
                None
            };
            Frame::Hello { version, tenant }
        }
        0x02 => Frame::Welcome {
            version: c.u32("WELCOME version")?,
            pool_pages: c.u64("WELCOME pool")?,
            policy: c.string("WELCOME policy")?,
        },
        0x03 => Frame::Submit(SubmitSpec {
            priority: c.u32("SUBMIT priority")?,
            min_pages: c.u64("SUBMIT min_pages")?,
            max_pages: c.u64("SUBMIT max_pages")?,
            memory_pages: c.u64("SUBMIT memory_pages")?,
            page_size: c.u64("SUBMIT page_size")?,
            tuple_size: c.u64("SUBMIT tuple_size")?,
            cpu_threads: c.u32("SUBMIT cpu_threads")?,
            expected_tuples: c.u64("SUBMIT expected_tuples")?,
            spill: c.bool("SUBMIT spill")?,
            descending: c.bool("SUBMIT descending")?,
            adaptive: match c.u8("SUBMIT adaptive")? {
                0 => None,
                1 => Some(true),
                2 => Some(false),
                other => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed frame: SUBMIT adaptive {other}"),
                    ))
                }
            },
        }),
        0x04 => Frame::Accepted {
            job: c.u64("ACCEPTED job")?,
        },
        0x05 => Frame::Ingest(c.tuples()?),
        0x06 => Frame::Fin,
        0x07 => Frame::Egress(c.tuples()?),
        0x08 => Frame::Stats(JobSummary {
            job: c.u64("STATS job")?,
            tuples: c.u64("STATS tuples")?,
            queued_for: c.f64("STATS queued_for")?,
            ran_for: c.f64("STATS ran_for")?,
            initial_grant: c.u64("STATS initial_grant")?,
            reallocations: c.u64("STATS reallocations")?,
            delay_samples: c.u64("STATS delay_samples")?,
            total_delay: c.f64("STATS total_delay")?,
            runs_formed: c.u64("STATS runs_formed")?,
            merge_steps: c.u64("STATS merge_steps")?,
            natural_runs: c.u64("STATS natural_runs")?,
            min_run_tuples: c.u64("STATS min_run_tuples")?,
            max_run_tuples: c.u64("STATS max_run_tuples")?,
            avg_run_tuples: c.f64("STATS avg_run_tuples")?,
        }),
        0x09 => {
            let raw = c.u8("ERR code")?;
            let code = ErrorCode::from_u8(raw).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("malformed frame: unknown error code {raw}"),
                )
            })?;
            Frame::Error(WireError {
                code,
                needed: c.u64("ERR needed")?,
                granted: c.u64("ERR granted")?,
                message: c.string("ERR message")?,
            })
        }
        0x0A => Frame::Cancel,
        0x0B => Frame::Shutdown,
        0x0C => Frame::StatsReq,
        0x0E => Frame::TraceReq {
            job: c.u64("TRACE_REQ job")?,
        },
        0x0F => Frame::TraceData {
            json: c.string("TRACE_DATA json")?,
        },
        0x10 => Frame::MetricsReq,
        0x11 => Frame::MetricsData {
            json: c.string("METRICS_DATA json")?,
        },
        0x0D => Frame::ServerStats(ServerSummary {
            pool_pages: c.u64("SERVER_STATS pool")?,
            live_jobs: c.u64("SERVER_STATS live")?,
            queued_jobs: c.u64("SERVER_STATS queued")?,
            submitted: c.u64("SERVER_STATS submitted")?,
            completed: c.u64("SERVER_STATS completed")?,
            failed: c.u64("SERVER_STATS failed")?,
            rejected: c.u64("SERVER_STATS rejected")?,
            cancelled: c.u64("SERVER_STATS cancelled")?,
            leaked_pages: c.u64("SERVER_STATS leaked")?,
            total_reallocations: c.u64("SERVER_STATS reallocations")?,
        }),
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed frame: unknown opcode 0x{other:02X}"),
            ))
        }
    };
    let name = frame.name();
    c.finish(name)?;
    Ok(frame)
}

/// Read one length-prefixed frame, blocking until it arrives.
///
/// Returns `Ok(None)` on a clean end-of-stream (the peer closed between
/// frames); a close *inside* a frame is [`io::ErrorKind::UnexpectedEof`].
/// A length prefix over [`MAX_FRAME_BYTES`] is rejected before any body
/// allocation.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Frame>> {
    read_frame_abortable(r, &AtomicBool::new(false))
}

/// [`read_frame`], but bails out between frames when `abort` becomes true.
///
/// The reader is expected to carry a read timeout: each blocking read then
/// wakes up with [`WouldBlock`](io::ErrorKind::WouldBlock) /
/// [`TimedOut`](io::ErrorKind::TimedOut) every so often, and this function
/// re-checks the flag. The check only fires while **zero** bytes of the next
/// frame have arrived — once a frame is partially read we keep going, because
/// abandoning mid-frame would desynchronise the stream. An abort surfaces as
/// `Ok(None)`, same as a clean close.
pub fn read_frame_abortable<R: Read>(r: &mut R, abort: &AtomicBool) -> io::Result<Option<Frame>> {
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < prefix.len() {
        if got == 0 && abort.load(Ordering::Acquire) {
            return Ok(None);
        }
        match r.read(&mut prefix[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame length prefix",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Read timeout tick: loop back around, re-checking the abort
                // flag only while nothing of this frame has arrived yet.
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "malformed frame: zero-length body",
        ));
    }
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("malformed frame: {len} byte body exceeds the {MAX_FRAME_BYTES} byte cap"),
        ));
    }
    let mut body = vec![0u8; len];
    let mut got = 0usize;
    while got < len {
        match r.read(&mut body[got..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed inside a frame body",
                ))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    decode_frame(&body).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        let body = encode_frame(&frame);
        assert_eq!(decode_frame(&body).unwrap(), frame, "body round trip");
        let mut wire = Vec::new();
        write_frame(&mut wire, &frame).unwrap();
        let mut r = io::Cursor::new(wire);
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(frame),
            "framed round trip"
        );
    }

    #[test]
    fn every_frame_shape_survives_a_round_trip() {
        round_trip(Frame::Hello {
            version: 1,
            tenant: None,
        });
        round_trip(Frame::Hello {
            version: 7,
            tenant: Some("acme".into()),
        });
        round_trip(Frame::Welcome {
            version: 1,
            pool_pages: 64,
            policy: "priority-weighted".into(),
        });
        round_trip(Frame::Submit(SubmitSpec {
            priority: 3,
            min_pages: 2,
            max_pages: 24,
            memory_pages: 16,
            page_size: 4096,
            tuple_size: 64,
            cpu_threads: 2,
            expected_tuples: 100_000,
            spill: true,
            descending: true,
            adaptive: Some(false),
        }));
        round_trip(Frame::Accepted { job: 42 });
        round_trip(Frame::Ingest(vec![
            Tuple::synthetic(9, 64),
            Tuple::new(3, vec![1, 2, 3]),
            Tuple::new(u64::MAX, Vec::new()),
        ]));
        round_trip(Frame::Fin);
        round_trip(Frame::Egress(vec![Tuple::synthetic(0, 0)]));
        round_trip(Frame::Stats(JobSummary {
            job: 1,
            tuples: 12345,
            queued_for: 0.25,
            ran_for: 1.5,
            initial_grant: 8,
            reallocations: 3,
            delay_samples: 2,
            total_delay: 0.125,
            runs_formed: 4,
            merge_steps: 1,
            natural_runs: 2,
            min_run_tuples: 8,
            max_run_tuples: 640,
            avg_run_tuples: 76.5,
        }));
        round_trip(Frame::Error(WireError {
            code: ErrorCode::BudgetStarved,
            needed: 32,
            granted: 8,
            message: "pool too small".into(),
        }));
        round_trip(Frame::Cancel);
        round_trip(Frame::Shutdown);
        round_trip(Frame::StatsReq);
        round_trip(Frame::ServerStats(ServerSummary {
            pool_pages: 64,
            live_jobs: 2,
            queued_jobs: 1,
            submitted: 10,
            completed: 7,
            failed: 1,
            rejected: 1,
            cancelled: 1,
            leaked_pages: 0,
            total_reallocations: 9,
        }));
        round_trip(Frame::TraceReq { job: 17 });
        round_trip(Frame::TraceData {
            json: "{\"span\":18,\"events\":[]}".into(),
        });
        round_trip(Frame::MetricsReq);
        round_trip(Frame::MetricsData {
            json: "{\"counters\":[],\"gauges\":[],\"histograms\":[]}".into(),
        });
    }

    #[test]
    fn empty_and_oversized_bodies_are_rejected() {
        assert_eq!(
            decode_frame(&[]).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut wire = Vec::new();
        wire.extend_from_slice(&((MAX_FRAME_BYTES as u32) + 1).to_le_bytes());
        wire.push(0x06);
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn a_blob_count_larger_than_the_body_does_not_allocate() {
        // INGEST claiming u32::MAX tuples with a 5-byte body.
        let body = [0x05, 0xFF, 0xFF, 0xFF, 0xFF];
        let err = decode_frame(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = encode_frame(&Frame::Fin);
        body.push(0xAB);
        let err = decode_frame(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn eof_inside_a_frame_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Frame::Accepted { job: 5 }).unwrap();
        wire.truncate(wire.len() - 3);
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn eof_between_frames_is_a_clean_none() {
        let mut empty = io::Cursor::new(Vec::<u8>::new());
        assert_eq!(read_frame(&mut empty).unwrap(), None);
    }
}
