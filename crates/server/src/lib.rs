//! # masort-server — the memory-adaptive sort broker, served over the network
//!
//! The paper's setting is a database *server*: queries arrive from many
//! clients, each external sort competes for buffer memory, and the memory
//! manager re-divides the pool as the mix changes. `masort-broker` built that
//! broker in-process; this crate puts it behind a socket. A standalone
//! `masort-server` binary owns one [`SortService`](masort_broker::SortService)
//! and speaks a small length-prefixed frame protocol over TCP; every
//! connection is one sort, and an arbitrary number of remote clients contend
//! for the same page pool — growing, shrinking, suspending and splitting
//! mid-flight exactly as local submissions do.
//!
//! The pieces:
//!
//! - [`protocol`] / [`codec`] — the frame types and their defensive
//!   byte-level encoding (`u32` length prefix, opcode byte, bounded
//!   allocations, no panics on malformed input).
//! - [`Server`] — the accept loop: one session thread per connection, a
//!   shared [`SortService`](masort_broker::SortService) underneath, per-tenant
//!   quotas, cooperative drain-and-exit shutdown.
//! - [`SortClient`] — a thin synchronous client: handshake, submit, stream
//!   tuples in, iterate sorted tuples out. Ingest is backpressured end to
//!   end: a sort that cannot take more input stops reading its channel, the
//!   session stops reading the socket, and the client's `ingest` blocks on
//!   the TCP window.
//! - Two binaries: `masort-server` (serve a pool) and `masort-cli`
//!   (sort stdin to stdout over the network).
//!
//! ```no_run
//! use masort_server::{Server, SortClient, SubmitSpec};
//! use masort_core::Tuple;
//!
//! let handle = Server::builder().pool_pages(32).bind("127.0.0.1:0")?.spawn();
//!
//! let mut client = SortClient::connect(handle.addr(), Some("acme"))?;
//! client.submit(SubmitSpec { memory_pages: 8, ..SubmitSpec::default() })?;
//! client.ingest((0..10_000u64).rev().map(|k| Tuple::synthetic(k, 64)).collect())?;
//! let (sorted, summary) = client.finish()?.into_sorted_vec()?;
//! assert_eq!(sorted.len(), 10_000);
//! assert!(summary.runs_formed >= 1);
//!
//! handle.join();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;
mod session;
pub mod tenant;

pub use client::{
    fetch_metrics, fetch_trace, server_stats, shutdown_server, ClientError, ClientResult,
    Completed, SortClient,
};
pub use protocol::{
    ErrorCode, Frame, JobSummary, ServerSummary, SubmitSpec, WireError, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
pub use server::{PolicyChoice, Server, ServerBuilder, ServerHandle};
pub use tenant::{TenantQuota, TenantRegistry};

/// Convenient glob import of the server- and client-facing types.
pub mod prelude {
    pub use crate::client::{
        fetch_metrics, fetch_trace, server_stats, shutdown_server, ClientError, ClientResult,
        Completed, SortClient,
    };
    pub use crate::protocol::{
        ErrorCode, Frame, JobSummary, ServerSummary, SubmitSpec, WireError, PROTOCOL_VERSION,
    };
    pub use crate::server::{PolicyChoice, Server, ServerBuilder, ServerHandle};
    pub use crate::tenant::{TenantQuota, TenantRegistry};
}
