//! A thin synchronous client for the sort server.
//!
//! [`SortClient`] drives one sort per connection: connect (HELLO/WELCOME),
//! [`submit`](SortClient::submit), feed tuples with
//! [`ingest`](SortClient::ingest), then [`finish`](SortClient::finish) and
//! iterate the sorted result. The free functions [`shutdown_server`] and
//! [`server_stats`] speak the admin side of the protocol.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use masort_core::Tuple;

use crate::codec::{read_frame, write_frame};
use crate::protocol::{Frame, JobSummary, ServerSummary, SubmitSpec, WireError, PROTOCOL_VERSION};

/// Everything that can go wrong on the client side of a sort.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed.
    Io(io::Error),
    /// The server refused or aborted the sort with a typed error frame.
    Remote(WireError),
    /// The server broke the protocol (sent a frame the state machine does
    /// not allow here, or closed mid-conversation).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "I/O error: {e}"),
            ClientError::Remote(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol error: {d}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Alias for client-side results.
pub type ClientResult<T> = Result<T, ClientError>;

fn unexpected(frame: &Frame, wanted: &str) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, server sent {}", frame.name()))
}

fn closed(wanted: &str) -> ClientError {
    ClientError::Protocol(format!("server closed the connection, expected {wanted}"))
}

/// One connection to a sort server; one sort per connection.
pub struct SortClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    pool_pages: u64,
    policy: String,
}

impl SortClient {
    /// Connect and perform the HELLO/WELCOME handshake, optionally under a
    /// tenant name.
    pub fn connect(addr: impl ToSocketAddrs, tenant: Option<&str>) -> ClientResult<SortClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        let mut client = SortClient {
            reader,
            writer: BufWriter::new(stream),
            pool_pages: 0,
            policy: String::new(),
        };
        client.send(&Frame::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.map(str::to_string),
        })?;
        match client.recv("WELCOME")? {
            Frame::Welcome {
                pool_pages, policy, ..
            } => {
                client.pool_pages = pool_pages;
                client.policy = policy;
                Ok(client)
            }
            Frame::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected(&other, "WELCOME")),
        }
    }

    fn send(&mut self, frame: &Frame) -> ClientResult<()> {
        write_frame(&mut self.writer, frame)?;
        self.writer.flush()?;
        Ok(())
    }

    fn recv(&mut self, wanted: &str) -> ClientResult<Frame> {
        match read_frame(&mut self.reader)? {
            Some(frame) => Ok(frame),
            None => Err(closed(wanted)),
        }
    }

    /// Page-pool size the server advertised in WELCOME.
    pub fn pool_pages(&self) -> u64 {
        self.pool_pages
    }

    /// Arbitration-policy name the server advertised in WELCOME.
    pub fn policy(&self) -> &str {
        &self.policy
    }

    /// Submit the sort; returns the server-assigned job id.
    pub fn submit(&mut self, spec: SubmitSpec) -> ClientResult<u64> {
        self.send(&Frame::Submit(spec))?;
        match self.recv("ACCEPTED")? {
            Frame::Accepted { job } => Ok(job),
            Frame::Error(e) => Err(ClientError::Remote(e)),
            other => Err(unexpected(&other, "ACCEPTED")),
        }
    }

    /// Send one chunk of input tuples. Blocks when the server's ingest
    /// channel (and then the TCP window) fills — that is the sort's
    /// backpressure reaching the producer.
    pub fn ingest(&mut self, tuples: Vec<Tuple>) -> ClientResult<()> {
        if tuples.is_empty() {
            return Ok(());
        }
        self.send(&Frame::Ingest(tuples))
    }

    /// Declare end of input and switch to draining the sorted result.
    pub fn finish(mut self) -> ClientResult<Completed> {
        self.send(&Frame::Fin)?;
        Ok(Completed {
            client: self,
            chunk: Vec::new().into_iter(),
            summary: None,
        })
    }

    /// Abort the in-flight sort. The server answers with a `Cancelled`
    /// error frame, which this call consumes.
    pub fn cancel(mut self) -> ClientResult<WireError> {
        self.send(&Frame::Cancel)?;
        match self.recv("ERR")? {
            Frame::Error(e) => Ok(e),
            other => Err(unexpected(&other, "ERR")),
        }
    }
}

/// The draining half of a sort: iterate the sorted tuples, then read the
/// [`summary`](Completed::summary).
pub struct Completed {
    client: SortClient,
    chunk: std::vec::IntoIter<Tuple>,
    summary: Option<JobSummary>,
}

impl Completed {
    /// Per-job statistics from the terminal `STATS` frame. `None` until the
    /// iterator has been fully drained.
    pub fn summary(&self) -> Option<&JobSummary> {
        self.summary.as_ref()
    }

    /// Drain every tuple into a vector and return it with the summary.
    pub fn into_sorted_vec(mut self) -> ClientResult<(Vec<Tuple>, JobSummary)> {
        let mut out = Vec::new();
        for tuple in &mut self {
            out.push(tuple?);
        }
        let summary = self
            .summary
            .take()
            .expect("summary present after a fully drained stream");
        Ok((out, summary))
    }
}

impl Iterator for Completed {
    type Item = ClientResult<Tuple>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(tuple) = self.chunk.next() {
                return Some(Ok(tuple));
            }
            if self.summary.is_some() {
                return None;
            }
            match self.client.recv("EGRESS or STATS") {
                Ok(Frame::Egress(tuples)) => self.chunk = tuples.into_iter(),
                Ok(Frame::Stats(summary)) => {
                    self.summary = Some(summary);
                    return None;
                }
                Ok(Frame::Error(e)) => return Some(Err(ClientError::Remote(e))),
                Ok(other) => return Some(Err(unexpected(&other, "EGRESS or STATS"))),
                Err(e) => return Some(Err(e)),
            }
        }
    }
}

/// Ask a server to drain and exit; returns its final counters.
pub fn shutdown_server(addr: impl ToSocketAddrs) -> ClientResult<ServerSummary> {
    admin(addr, Frame::Shutdown)
}

/// Fetch a server's service-wide counters.
pub fn server_stats(addr: impl ToSocketAddrs) -> ClientResult<ServerSummary> {
    admin(addr, Frame::StatsReq)
}

fn admin(addr: impl ToSocketAddrs, frame: Frame) -> ClientResult<ServerSummary> {
    match admin_frame(addr, frame, "SERVER_STATS")? {
        Frame::ServerStats(summary) => Ok(summary),
        other => Err(unexpected(&other, "SERVER_STATS")),
    }
}

/// Fetch one job's event timeline as a JSON document (the raw `TRACE_DATA`
/// payload; parse with [`masort_trace::trace_from_json`]).
pub fn fetch_trace(addr: impl ToSocketAddrs, job: u64) -> ClientResult<String> {
    match admin_frame(addr, Frame::TraceReq { job }, "TRACE_DATA")? {
        Frame::TraceData { json } => Ok(json),
        other => Err(unexpected(&other, "TRACE_DATA")),
    }
}

/// Fetch the server's service-wide metrics registry as a JSON document (the
/// raw `METRICS_DATA` payload; parse with [`masort_trace::metrics_from_json`]).
pub fn fetch_metrics(addr: impl ToSocketAddrs) -> ClientResult<String> {
    match admin_frame(addr, Frame::MetricsReq, "METRICS_DATA")? {
        Frame::MetricsData { json } => Ok(json),
        other => Err(unexpected(&other, "METRICS_DATA")),
    }
}

/// One-shot admin exchange: connect, send `frame`, read the reply.
fn admin_frame(addr: impl ToSocketAddrs, frame: Frame, wanted: &str) -> ClientResult<Frame> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    write_frame(&mut writer, &frame)?;
    writer.flush()?;
    match read_frame(&mut reader)? {
        Some(Frame::Error(e)) => Err(ClientError::Remote(e)),
        Some(reply) => Ok(reply),
        None => Err(closed(wanted)),
    }
}
