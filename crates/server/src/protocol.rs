//! The wire protocol: frame types, error codes and protocol constants.
//!
//! Every message on the wire is one *frame*: a little-endian `u32` length
//! prefix followed by `length` bytes of body, where the body's first byte is
//! the opcode and the rest is the opcode-specific payload (see [`crate::codec`]
//! for the byte-level encoding). The length prefix covers the body only, and
//! is capped at [`MAX_FRAME_BYTES`] so a corrupt or hostile prefix cannot make
//! the server allocate unbounded memory.
//!
//! A sort conversation is:
//!
//! ```text
//! client                          server
//! ------                          ------
//! HELLO {version, tenant}   -->
//!                           <--   WELCOME {version, pool, policy}   (or ERR)
//! SUBMIT {geometry, shares} -->
//!                           <--   ACCEPTED {job}                    (or ERR)
//! INGEST {tuples}           -->   (repeated; backpressured by the
//! INGEST {tuples}           -->    sort's bounded input channel)
//! FIN                       -->
//!                           <--   EGRESS {tuples}                   (repeated)
//!                           <--   STATS {job summary}               (or ERR)
//! ```
//!
//! `CANCEL` may replace any `INGEST`; the server aborts the job and answers
//! with `ERR {Cancelled}`. A connection that drops mid-ingest aborts its job
//! the same way — the sort fails, its pages return to the pool and its runs
//! are deleted. `SHUTDOWN` and `STATS_REQ` are connection-scoped admin
//! commands sent *instead of* `HELLO`.

use masort_core::Tuple;

/// Version this crate speaks. A `HELLO` carrying any other version is
/// answered with an [`ErrorCode::Protocol`] error.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on one frame's body (opcode + payload), enforced on both
/// send and receive. 16 MiB comfortably fits the largest egress chunk while
/// bounding what a corrupt length prefix can ask the receiver to allocate.
pub const MAX_FRAME_BYTES: usize = 16 << 20;

/// Typed error delivered in an `ERR` frame.
///
/// `needed` / `granted` carry the page arithmetic for
/// [`BudgetStarved`](ErrorCode::BudgetStarved) and
/// [`QuotaExceeded`](ErrorCode::QuotaExceeded); they are zero for the other
/// codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// What went wrong, as a stable numeric class.
    pub code: ErrorCode,
    /// Pages (or slots) the request needed, for capacity errors.
    pub needed: u64,
    /// Pages (or slots) actually available, for capacity errors.
    pub granted: u64,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Shorthand for an error with no capacity arithmetic.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        WireError {
            code,
            needed: 0,
            granted: 0,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if self.needed > 0 || self.granted > 0 {
            write!(f, " (needed {}, granted {})", self.needed, self.granted)?;
        }
        Ok(())
    }
}

/// Stable numeric error classes for `ERR` frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrorCode {
    /// The job's minimum share exceeds the whole pool (maps
    /// `SortError::BudgetStarved`).
    BudgetStarved = 1,
    /// Unusable sort configuration.
    InvalidConfig = 2,
    /// An I/O failure inside the sort (or the job panicked).
    Io = 3,
    /// The job was cancelled — by a `CANCEL` frame or a client disconnect.
    Cancelled = 4,
    /// The peer broke the framing or sent a frame the state machine does not
    /// allow here.
    Protocol = 5,
    /// The tenant is over one of its quotas (live jobs or pages).
    QuotaExceeded = 6,
    /// A stored run failed to decode server-side.
    CorruptRun = 7,
    /// The sort referenced a run its store never created.
    UnknownRun = 8,
    /// The server is draining and no longer accepts new sorts.
    ShuttingDown = 9,
}

impl ErrorCode {
    /// Decode a wire byte; `None` for unknown codes.
    pub fn from_u8(v: u8) -> Option<ErrorCode> {
        Some(match v {
            1 => ErrorCode::BudgetStarved,
            2 => ErrorCode::InvalidConfig,
            3 => ErrorCode::Io,
            4 => ErrorCode::Cancelled,
            5 => ErrorCode::Protocol,
            6 => ErrorCode::QuotaExceeded,
            7 => ErrorCode::CorruptRun,
            8 => ErrorCode::UnknownRun,
            9 => ErrorCode::ShuttingDown,
            _ => return None,
        })
    }
}

/// Everything a `SUBMIT` frame says about the job: sort geometry plus the
/// broker-facing shares. Zero means "use the server default" for every
/// field except `priority` (where the default is literally 1) and the two
/// flags.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubmitSpec {
    /// Scheduling priority (larger = more important; 0 is treated as 1).
    pub priority: u32,
    /// Guaranteed minimum pages (0 = service default of 1).
    pub min_pages: u64,
    /// Maximum useful pages (0 = the job's `memory_pages`).
    pub max_pages: u64,
    /// Pages the sort would like (0 = server default).
    pub memory_pages: u64,
    /// Page size in bytes (0 = server default).
    pub page_size: u64,
    /// Nominal tuple size in bytes, for page geometry (0 = server default).
    pub tuple_size: u64,
    /// Compute workers for the split phase (0 = 1, single-threaded).
    pub cpu_threads: u32,
    /// Tuples the client intends to send (0 = unknown); a planning hint only.
    pub expected_tuples: u64,
    /// Spill runs to a temporary directory instead of memory.
    pub spill: bool,
    /// Sort descending instead of ascending.
    pub descending: bool,
    /// Presortedness-adaptive run formation
    /// ([`SortConfig::adaptive_runs`](masort_core::SortConfig::adaptive_runs)):
    /// `None` keeps the server's base configuration (on by default),
    /// `Some(x)` forces it for this job.
    pub adaptive: Option<bool>,
}

impl Default for SubmitSpec {
    fn default() -> Self {
        SubmitSpec {
            priority: 1,
            min_pages: 0,
            max_pages: 0,
            memory_pages: 0,
            page_size: 0,
            tuple_size: 0,
            cpu_threads: 0,
            expected_tuples: 0,
            spill: false,
            descending: false,
            adaptive: None,
        }
    }
}

/// Per-job statistics delivered in the terminal `STATS` frame, after the
/// last `EGRESS` chunk.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct JobSummary {
    /// Server-assigned job identifier (same as in `ACCEPTED`).
    pub job: u64,
    /// Tuples in the sorted result.
    pub tuples: u64,
    /// Seconds the job waited for admission.
    pub queued_for: f64,
    /// Seconds between admission and completion.
    pub ran_for: f64,
    /// Pages the arbitration policy granted at admission.
    pub initial_grant: u64,
    /// Mid-flight page-target changes the broker pushed into the running job.
    pub reallocations: u64,
    /// Shrink-delay samples the sort recorded (the paper's delays).
    pub delay_samples: u64,
    /// Summed duration of those delays, in seconds.
    pub total_delay: f64,
    /// Sorted runs the split phase formed.
    pub runs_formed: u64,
    /// Merge steps executed.
    pub merge_steps: u64,
    /// Natural (pre-existing) runs adaptive formation detected in the input
    /// (0 under classic formation).
    pub natural_runs: u64,
    /// Tuples in the shortest run (0 if no runs were formed).
    pub min_run_tuples: u64,
    /// Tuples in the longest run (0 if no runs were formed).
    pub max_run_tuples: u64,
    /// Mean tuples per run (0 if no runs were formed).
    pub avg_run_tuples: f64,
}

/// Service-wide counters delivered in a `SERVER_STATS` frame.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Current size of the brokered page pool.
    pub pool_pages: u64,
    /// Sorts currently executing.
    pub live_jobs: u64,
    /// Requests waiting for admission.
    pub queued_jobs: u64,
    /// Requests accepted since the server started.
    pub submitted: u64,
    /// Jobs completed successfully.
    pub completed: u64,
    /// Jobs that started but failed.
    pub failed: u64,
    /// Requests rejected as impossible.
    pub rejected: u64,
    /// Jobs cancelled while queued or running.
    pub cancelled: u64,
    /// Pages still recorded as held when jobs released — must stay zero.
    pub leaked_pages: u64,
    /// Mid-flight reallocations across all completed jobs.
    pub total_reallocations: u64,
}

/// One protocol frame. See the module docs for the conversation and
/// [`crate::codec`] for the encoding.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Client's opening: protocol version + optional tenant name.
    Hello {
        /// Protocol version the client speaks.
        version: u32,
        /// Tenant to account (and quota) this connection under.
        tenant: Option<String>,
    },
    /// Server's answer to `HELLO`.
    Welcome {
        /// Protocol version the server speaks.
        version: u32,
        /// Current size of the brokered page pool.
        pool_pages: u64,
        /// Name of the arbitration policy dividing it.
        policy: String,
    },
    /// Describe the sort to run.
    Submit(SubmitSpec),
    /// The job was admitted to the queue.
    Accepted {
        /// Server-assigned job identifier.
        job: u64,
    },
    /// A chunk of input tuples.
    Ingest(Vec<Tuple>),
    /// End of input: the client has sent every tuple.
    Fin,
    /// A chunk of sorted output tuples.
    Egress(Vec<Tuple>),
    /// Terminal frame of a successful sort: per-job statistics. Arrives
    /// after the last `EGRESS` chunk.
    Stats(JobSummary),
    /// Terminal frame of a failed (or refused, or cancelled) exchange.
    Error(WireError),
    /// Abort the in-flight job.
    Cancel,
    /// Ask the server to drain in-flight sorts and exit (sent instead of
    /// `HELLO`).
    Shutdown,
    /// Ask for service-wide counters (sent instead of `HELLO`).
    StatsReq,
    /// Answer to `STATS_REQ`.
    ServerStats(ServerSummary),
    /// Ask for one job's event timeline (sent instead of `HELLO`). The job
    /// id is the server-assigned id from `ACCEPTED`.
    TraceReq {
        /// Job whose timeline to fetch.
        job: u64,
    },
    /// Answer to `TRACE_REQ`: the job's events as a JSON document (the
    /// `masort_trace` trace-snapshot schema; empty event list for unknown
    /// jobs, which are indistinguishable from jobs that emitted nothing).
    TraceData {
        /// JSON text, parseable with `masort_trace::trace_from_json`.
        json: String,
    },
    /// Ask for the service-wide metrics registry (sent instead of `HELLO`).
    MetricsReq,
    /// Answer to `METRICS_REQ`: every counter/gauge/histogram as a JSON
    /// document (the `masort_trace` metrics-snapshot schema).
    MetricsData {
        /// JSON text, parseable with `masort_trace::metrics_from_json`.
        json: String,
    },
}

impl Frame {
    /// The frame's opcode byte (first byte of the body).
    pub fn opcode(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0x01,
            Frame::Welcome { .. } => 0x02,
            Frame::Submit(_) => 0x03,
            Frame::Accepted { .. } => 0x04,
            Frame::Ingest(_) => 0x05,
            Frame::Fin => 0x06,
            Frame::Egress(_) => 0x07,
            Frame::Stats(_) => 0x08,
            Frame::Error(_) => 0x09,
            Frame::Cancel => 0x0A,
            Frame::Shutdown => 0x0B,
            Frame::StatsReq => 0x0C,
            Frame::ServerStats(_) => 0x0D,
            Frame::TraceReq { .. } => 0x0E,
            Frame::TraceData { .. } => 0x0F,
            Frame::MetricsReq => 0x10,
            Frame::MetricsData { .. } => 0x11,
        }
    }

    /// Short human name, for protocol-error messages.
    pub fn name(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "HELLO",
            Frame::Welcome { .. } => "WELCOME",
            Frame::Submit(_) => "SUBMIT",
            Frame::Accepted { .. } => "ACCEPTED",
            Frame::Ingest(_) => "INGEST",
            Frame::Fin => "FIN",
            Frame::Egress(_) => "EGRESS",
            Frame::Stats(_) => "STATS",
            Frame::Error(_) => "ERR",
            Frame::Cancel => "CANCEL",
            Frame::Shutdown => "SHUTDOWN",
            Frame::StatsReq => "STATS_REQ",
            Frame::ServerStats(_) => "SERVER_STATS",
            Frame::TraceReq { .. } => "TRACE_REQ",
            Frame::TraceData { .. } => "TRACE_DATA",
            Frame::MetricsReq => "METRICS_REQ",
            Frame::MetricsData { .. } => "METRICS_DATA",
        }
    }
}
