//! One accepted connection: the server side of the protocol state machine.
//!
//! A session owns exactly one sort. It reads `HELLO`/`SUBMIT`, turns the
//! submission into a [`SortRequest`] whose input is a bounded
//! [`ChannelSource`] — so a slow sort backpressures `INGEST` frames straight
//! through TCP — and then pumps tuples in, waits on the ticket and streams
//! the sorted result back out. Every abnormal exit (a `CANCEL` frame, a
//! protocol violation, a vanished client) funnels through the same cleanup:
//! cancel the ticket, drop the ingest channel, drain the ticket so the job's
//! pages are provably back in the pool before the session ends.

use masort_core::sync::atomic::Ordering;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use masort_broker::SortRequest;
use masort_core::{ChannelSource, Page, SortError, SortOrder, Tuple};
use masort_trace::EventKind;

use crate::codec::{read_frame, read_frame_abortable, write_frame};
use crate::protocol::{
    ErrorCode, Frame, JobSummary, SubmitSpec, WireError, MAX_FRAME_BYTES, PROTOCOL_VERSION,
};
use crate::server::ServerShared;

/// How often a blocked socket read wakes up to re-check the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(100);

/// Map a sort error onto its wire representation.
pub(crate) fn wire_error(e: &SortError) -> WireError {
    match e {
        SortError::BudgetStarved { needed, granted } => WireError {
            code: ErrorCode::BudgetStarved,
            needed: *needed as u64,
            granted: *granted as u64,
            message: e.to_string(),
        },
        SortError::InvalidConfig(_) => WireError::new(ErrorCode::InvalidConfig, e.to_string()),
        SortError::Cancelled => WireError::new(ErrorCode::Cancelled, e.to_string()),
        SortError::CorruptRun { .. } => WireError::new(ErrorCode::CorruptRun, e.to_string()),
        SortError::UnknownRun(_) => WireError::new(ErrorCode::UnknownRun, e.to_string()),
        SortError::Io(_) => WireError::new(ErrorCode::Io, e.to_string()),
    }
}

/// Serve one accepted connection to completion. Socket errors are swallowed
/// — the peer is gone and there is nobody left to tell — but job cleanup
/// always runs.
pub(crate) fn run_session(shared: &Arc<ServerShared>, stream: TcpStream) {
    // The read timeout turns blocking reads into a poll loop so a parked
    // session notices server shutdown; the codec retries the timeouts
    // internally and only surfaces them at frame boundaries.
    let _ = stream.set_read_timeout(Some(READ_TICK));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    shared.trace.emit(EventKind::SessionOpen);
    let _ = serve(shared, &mut reader, &mut writer);
    shared.trace.emit(EventKind::SessionClose);
    let _ = writer.flush();
}

/// Send a frame and flush it out immediately.
fn send<W: Write>(w: &mut W, frame: &Frame) -> io::Result<()> {
    write_frame(w, frame)?;
    w.flush()
}

fn send_error<W: Write>(w: &mut W, err: WireError) -> io::Result<()> {
    send(w, &Frame::Error(err))
}

fn protocol_error<W: Write>(w: &mut W, detail: String) -> io::Result<()> {
    send_error(w, WireError::new(ErrorCode::Protocol, detail))
}

fn serve<W: Write>(
    shared: &Arc<ServerShared>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut W,
) -> io::Result<()> {
    // The opening frame routes the whole connection: HELLO starts a sort,
    // SHUTDOWN / STATS_REQ / TRACE_REQ / METRICS_REQ are admin commands.
    let tenant = match read_frame_abortable(reader, &shared.shutdown)? {
        None => return Ok(()),
        Some(Frame::Shutdown) => {
            send(writer, &Frame::ServerStats(shared.summary()))?;
            shared.shutdown.store(true, Ordering::Release);
            return Ok(());
        }
        Some(frame @ (Frame::StatsReq | Frame::TraceReq { .. } | Frame::MetricsReq)) => {
            let mut frame = frame;
            // Answer, then allow a monitoring connection to keep polling any
            // mix of the three read-only admin requests.
            loop {
                match frame {
                    Frame::StatsReq => send(writer, &Frame::ServerStats(shared.summary()))?,
                    Frame::TraceReq { job } => send(
                        writer,
                        &Frame::TraceData {
                            json: shared.trace_json(job),
                        },
                    )?,
                    Frame::MetricsReq => send(
                        writer,
                        &Frame::MetricsData {
                            json: shared.metrics_json(),
                        },
                    )?,
                    Frame::Shutdown => {
                        send(writer, &Frame::ServerStats(shared.summary()))?;
                        shared.shutdown.store(true, Ordering::Release);
                        return Ok(());
                    }
                    other => {
                        return protocol_error(
                            writer,
                            format!("unexpected {} on a stats connection", other.name()),
                        )
                    }
                }
                match read_frame_abortable(reader, &shared.shutdown)? {
                    Some(next) => frame = next,
                    None => return Ok(()),
                }
            }
        }
        Some(Frame::Hello { version, tenant }) => {
            if version != PROTOCOL_VERSION {
                return send_error(
                    writer,
                    WireError::new(
                        ErrorCode::Protocol,
                        format!(
                            "client speaks protocol version {version}, server speaks {PROTOCOL_VERSION}"
                        ),
                    ),
                );
            }
            tenant
        }
        Some(other) => {
            return protocol_error(writer, format!("expected HELLO, got {}", other.name()))
        }
    };

    if shared.shutdown.load(Ordering::Acquire) {
        return send_error(
            writer,
            WireError::new(ErrorCode::ShuttingDown, "server is draining"),
        );
    }
    send(
        writer,
        &Frame::Welcome {
            version: PROTOCOL_VERSION,
            pool_pages: shared.service.pool_pages() as u64,
            policy: shared.service.policy_name().to_string(),
        },
    )?;

    let spec = match read_frame(reader)? {
        None => return Ok(()),
        Some(Frame::Submit(spec)) => spec,
        Some(other) => {
            return protocol_error(writer, format!("expected SUBMIT, got {}", other.name()))
        }
    };
    run_sort(shared, reader, writer, tenant, spec)
}

/// Admit the submission, pump ingest, drain egress. One sort, end to end.
fn run_sort<W: Write>(
    shared: &Arc<ServerShared>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut W,
    tenant: Option<String>,
    spec: SubmitSpec,
) -> io::Result<()> {
    // Quotas first: a live-job slot (held by RAII guard for the rest of the
    // session) and a per-sort page cap.
    let quota = tenant.as_deref().and_then(|t| shared.tenants.quota(t));
    let _live_guard = match tenant.as_deref() {
        Some(name) => match shared.tenants.claim(name) {
            Ok(guard) => Some(guard),
            Err((live, max)) => {
                return send_error(
                    writer,
                    WireError {
                        code: ErrorCode::QuotaExceeded,
                        needed: live as u64 + 1,
                        granted: max as u64,
                        message: format!(
                            "tenant `{name}` already has {live} of {max} sorts in flight"
                        ),
                    },
                )
            }
        },
        None => None,
    };

    let mut cfg = shared.base_cfg.clone();
    if spec.page_size != 0 {
        cfg = cfg.with_page_size(spec.page_size as usize);
    }
    if spec.tuple_size != 0 {
        cfg = cfg.with_tuple_size(spec.tuple_size as usize);
    }
    if spec.memory_pages != 0 {
        cfg = cfg.with_memory_pages(spec.memory_pages as usize);
    }
    if spec.descending {
        cfg = cfg.with_order(SortOrder::descending());
    }
    if let Some(adaptive) = spec.adaptive {
        cfg = cfg.with_adaptive_runs(adaptive);
    }
    let page_cap = quota.map(|q| q.max_pages).unwrap_or(0);
    if page_cap != 0 {
        if spec.min_pages as usize > page_cap {
            return send_error(
                writer,
                WireError {
                    code: ErrorCode::QuotaExceeded,
                    needed: spec.min_pages,
                    granted: page_cap as u64,
                    message: format!(
                        "minimum share of {} pages exceeds the tenant's {page_cap} page cap",
                        spec.min_pages
                    ),
                },
            );
        }
        let capped = cfg.memory_pages.min(page_cap);
        cfg = cfg.with_memory_pages(capped);
    }
    let tuples_per_page = cfg.tuples_per_page();

    let (sink, source) = ChannelSource::bounded(shared.ingest_depth);
    let source = if spec.expected_tuples != 0 {
        source.expecting_tuples(spec.expected_tuples as usize)
    } else {
        source
    };
    let mut request = SortRequest::from_source(cfg, source);
    let priority = match quota.map(|q| q.priority) {
        Some(p) if p != 0 => p,
        _ => spec.priority.max(1),
    };
    request = request.priority(priority);
    if spec.min_pages != 0 {
        request = request.min_pages(spec.min_pages as usize);
    }
    let max_pages = match (spec.max_pages as usize, page_cap) {
        (0, 0) => 0,
        (0, cap) => cap,
        (want, 0) => want,
        (want, cap) => want.min(cap),
    };
    if max_pages != 0 {
        request = request.max_pages(max_pages);
    }
    if spec.cpu_threads != 0 {
        request = request.cpu_threads(spec.cpu_threads as usize);
    }
    if spec.spill {
        request = request.spill_to_temp_dir();
    }
    if let Some(name) = &tenant {
        request = request.tenant(name.clone());
    }

    if shared.shutdown.load(Ordering::Acquire) {
        return send_error(
            writer,
            WireError::new(ErrorCode::ShuttingDown, "server is draining"),
        );
    }
    let ticket = match shared.service.submit(request) {
        Ok(ticket) => ticket,
        Err(e) => return send_error(writer, wire_error(&e)),
    };
    send(
        writer,
        &Frame::Accepted {
            job: ticket.job_id(),
        },
    )?;

    // -- Ingest ------------------------------------------------------------
    // Tuples are re-paged to the job's own page geometry; a full channel
    // blocks `sink.send`, which stops us reading frames, which fills the TCP
    // window — backpressure all the way to the client.
    let mut sink = Some(sink);
    let mut pending: Vec<Tuple> = Vec::new();
    let finished = loop {
        match read_frame_abortable(reader, &shared.shutdown) {
            Ok(Some(Frame::Ingest(tuples))) => {
                pending.extend(tuples);
                let tx = sink.as_ref().expect("sink alive during ingest");
                let mut closed = false;
                while pending.len() >= tuples_per_page {
                    let rest = pending.split_off(tuples_per_page);
                    let page = Page::from_tuples(std::mem::replace(&mut pending, rest));
                    if tx.send(page).is_err() {
                        // The sort is already over (failed or reallocated
                        // away); stop feeding it and report its fate below.
                        closed = true;
                        break;
                    }
                }
                if closed {
                    sink = None;
                    break true;
                }
            }
            Ok(Some(Frame::Fin)) => {
                let tx = sink.take().expect("sink alive during ingest");
                if !pending.is_empty() {
                    let _ = tx.send(Page::from_tuples(std::mem::take(&mut pending)));
                }
                tx.finish();
                break true;
            }
            Ok(Some(Frame::Cancel)) => {
                ticket.cancel();
                sink = None; // wake a sort blocked on input
                break false;
            }
            Ok(Some(other)) => {
                ticket.cancel();
                sink = None;
                let _ = protocol_error(
                    writer,
                    format!("expected INGEST, FIN or CANCEL, got {}", other.name()),
                );
                break false;
            }
            Ok(None) | Err(_) => {
                // Client disconnected mid-ingest (or the server is draining
                // and the client went quiet): abort the job. Dropping the
                // sink unblocks a sort waiting for input; cancelling the
                // ticket aborts one that is mid-computation. Either way we
                // still drain the ticket below, so by the time this session
                // ends the job's pages are back in the pool and its runs are
                // gone.
                ticket.cancel();
                sink = None;
                break false;
            }
        }
    };
    drop(sink);

    if !finished {
        // Cancelled or abandoned: drain the ticket so cleanup is complete,
        // then (best-effort) tell the client.
        let result = ticket.wait();
        let err = match &result {
            Err(e) => wire_error(e),
            // The sort won the race and completed before the cancel landed;
            // the client asked us to throw the result away.
            Ok(_) => wire_error(&SortError::Cancelled),
        };
        return send_error(writer, err);
    }

    // -- Egress ------------------------------------------------------------
    let report = match ticket.wait() {
        Ok(report) => report,
        Err(e) => return send_error(writer, wire_error(&e)),
    };
    let stats = &report.stats;
    let outcome = report.outcome();
    let mut summary = JobSummary {
        job: stats.job,
        tuples: 0,
        queued_for: stats.queued_for,
        ran_for: stats.ran_for,
        initial_grant: stats.initial_grant as u64,
        reallocations: stats.reallocations,
        delay_samples: stats.delay_samples as u64,
        total_delay: stats.total_delay,
        runs_formed: outcome.split.runs.len() as u64,
        merge_steps: outcome.merge.steps_executed as u64,
        natural_runs: stats.natural_runs as u64,
        min_run_tuples: stats.min_run_tuples as u64,
        max_run_tuples: stats.max_run_tuples as u64,
        avg_run_tuples: stats.avg_run_tuples,
    };
    // Keep each EGRESS frame comfortably under the frame cap even for
    // pathological payload sizes.
    let chunk_tuples = shared.egress_chunk.max(1);
    let mut chunk: Vec<Tuple> = Vec::with_capacity(chunk_tuples);
    let mut chunk_bytes = 0usize;
    for tuple in report.into_stream() {
        let tuple = match tuple {
            Ok(t) => t,
            Err(e) => return send_error(writer, wire_error(&e)),
        };
        chunk_bytes += tuple_wire_bytes(&tuple);
        chunk.push(tuple);
        summary.tuples += 1;
        if chunk.len() >= chunk_tuples || chunk_bytes >= MAX_FRAME_BYTES / 2 {
            write_frame(writer, &Frame::Egress(std::mem::take(&mut chunk)))?;
            chunk_bytes = 0;
        }
    }
    if !chunk.is_empty() {
        write_frame(writer, &Frame::Egress(chunk))?;
    }
    send(writer, &Frame::Stats(summary))
}

/// Wire footprint of one tuple, for egress chunk sizing.
fn tuple_wire_bytes(t: &Tuple) -> usize {
    8 + 1
        + match &t.payload {
            masort_core::Payload::Synthetic(_) => 4,
            masort_core::Payload::Bytes(b) => 4 + b.len(),
        }
}
