//! Per-tenant quotas and live-job accounting.
//!
//! A tenant is a client-supplied name carried in the `HELLO` frame. The
//! server may attach a [`TenantQuota`] to any name — a cap on concurrent
//! sorts, a cap on pages per sort, and an optional priority override — and
//! the [`TenantRegistry`] enforces the live-job cap with an RAII guard so a
//! slot is returned no matter how the session ends (success, cancel, panic
//! or disconnect). Unknown tenants, and connections with no tenant at all,
//! run unrestricted.

use masort_core::sync::{Mutex, MutexGuard};
use std::collections::HashMap;
use std::sync::Arc;

/// Limits applied to one tenant. A zero field means "unlimited" (or, for
/// `priority`, "no override").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantQuota {
    /// Most sorts this tenant may run (and queue) at once; 0 = unlimited.
    pub max_live: usize,
    /// Most pages one of this tenant's sorts may request; 0 = unlimited.
    pub max_pages: usize,
    /// Fixed scheduling priority for this tenant's jobs, overriding whatever
    /// the client asked for; 0 = honour the client's priority.
    pub priority: u32,
}

impl TenantQuota {
    /// Parse the CLI form `name=max_live:max_pages[:priority]`.
    ///
    /// ```
    /// let (name, quota) = masort_server::TenantQuota::parse("acme=4:16:2").unwrap();
    /// assert_eq!(name, "acme");
    /// assert_eq!(quota.max_live, 4);
    /// assert_eq!(quota.max_pages, 16);
    /// assert_eq!(quota.priority, 2);
    /// ```
    pub fn parse(s: &str) -> Result<(String, TenantQuota), String> {
        let (name, rest) = s
            .split_once('=')
            .ok_or_else(|| format!("tenant quota `{s}` is missing `=`"))?;
        if name.is_empty() {
            return Err(format!("tenant quota `{s}` has an empty tenant name"));
        }
        let mut parts = rest.split(':');
        let field = |part: Option<&str>, what: &str| -> Result<usize, String> {
            let raw = part.ok_or_else(|| format!("tenant quota `{s}` is missing {what}"))?;
            raw.parse::<usize>()
                .map_err(|_| format!("tenant quota `{s}`: {what} `{raw}` is not a number"))
        };
        let max_live = field(parts.next(), "max_live")?;
        let max_pages = field(parts.next(), "max_pages")?;
        let priority = match parts.next() {
            Some(raw) => raw
                .parse::<u32>()
                .map_err(|_| format!("tenant quota `{s}`: priority `{raw}` is not a number"))?,
            None => 0,
        };
        if parts.next().is_some() {
            return Err(format!("tenant quota `{s}` has too many `:` fields"));
        }
        Ok((
            name.to_string(),
            TenantQuota {
                max_live,
                max_pages,
                priority,
            },
        ))
    }
}

struct RegistryState {
    quotas: HashMap<String, TenantQuota>,
    live: HashMap<String, usize>,
}

/// Tracks configured quotas and how many sorts each tenant currently has in
/// flight. Cheap to clone — all clones share one state.
#[derive(Clone)]
pub struct TenantRegistry {
    state: Arc<Mutex<RegistryState>>,
}

impl TenantRegistry {
    /// A registry with the given quota table. Tenants absent from the table
    /// are unrestricted.
    pub fn new(quotas: HashMap<String, TenantQuota>) -> Self {
        TenantRegistry {
            state: Arc::new(Mutex::new(RegistryState {
                quotas,
                live: HashMap::new(),
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RegistryState> {
        self.state.lock()
    }

    /// The quota configured for `tenant`, if any.
    pub fn quota(&self, tenant: &str) -> Option<TenantQuota> {
        self.lock().quotas.get(tenant).copied()
    }

    /// Sorts `tenant` currently has in flight.
    pub fn live(&self, tenant: &str) -> usize {
        self.lock().live.get(tenant).copied().unwrap_or(0)
    }

    /// Claim a live-job slot for `tenant`. On success the returned guard
    /// holds the slot until dropped; on failure returns
    /// `Err((live, max_live))` for the quota error frame.
    pub fn claim(&self, tenant: &str) -> Result<LiveGuard, (usize, usize)> {
        let mut st = self.lock();
        let max_live = st.quotas.get(tenant).map(|q| q.max_live).unwrap_or(0);
        let live = st.live.entry(tenant.to_string()).or_insert(0);
        if max_live != 0 && *live >= max_live {
            return Err((*live, max_live));
        }
        *live += 1;
        Ok(LiveGuard {
            registry: self.clone(),
            tenant: tenant.to_string(),
        })
    }
}

/// RAII handle on one tenant live-job slot; dropping it releases the slot.
pub struct LiveGuard {
    registry: TenantRegistry,
    tenant: String,
}

impl std::fmt::Debug for LiveGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LiveGuard")
            .field("tenant", &self.tenant)
            .finish()
    }
}

impl Drop for LiveGuard {
    fn drop(&mut self) {
        let mut st = self.registry.lock();
        if let Some(live) = st.live.get_mut(&self.tenant) {
            *live = live.saturating_sub(1);
            if *live == 0 {
                st.live.remove(&self.tenant);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_forms() {
        let (name, q) = TenantQuota::parse("acme=4:16").unwrap();
        assert_eq!(name, "acme");
        assert_eq!(
            q,
            TenantQuota {
                max_live: 4,
                max_pages: 16,
                priority: 0
            }
        );
        let (_, q) = TenantQuota::parse("acme=0:0:7").unwrap();
        assert_eq!(q.priority, 7);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in ["acme", "=1:2", "acme=1", "acme=x:2", "acme=1:2:3:4"] {
            assert!(TenantQuota::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn claims_enforce_max_live_and_guards_release_slots() {
        let mut quotas = HashMap::new();
        quotas.insert(
            "acme".to_string(),
            TenantQuota {
                max_live: 2,
                max_pages: 0,
                priority: 0,
            },
        );
        let reg = TenantRegistry::new(quotas);
        let a = reg.claim("acme").unwrap();
        let b = reg.claim("acme").unwrap();
        assert_eq!(reg.claim("acme").unwrap_err(), (2, 2));
        // Unknown tenants are unrestricted.
        let _c = reg.claim("other").unwrap();
        let _d = reg.claim("other").unwrap();
        drop(a);
        let _e = reg.claim("acme").unwrap();
        assert_eq!(reg.live("acme"), 2);
        drop(b);
        drop(_e);
        assert_eq!(reg.live("acme"), 0);
    }
}
