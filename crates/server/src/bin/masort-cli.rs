//! `masort-cli` — sort stdin through a remote masort-server.
//!
//! ```text
//! masort-cli [sort] [--addr HOST:PORT] [--tenant NAME] [--priority N]
//!            [--budget PAGES] [--min-pages N] [--max-pages N]
//!            [--page-size BYTES] [--tuple-size BYTES] [--cpu-threads N]
//!            [--spill] [--descending]          < input > output
//! masort-cli shutdown [--addr HOST:PORT]
//! masort-cli stats    [--addr HOST:PORT]
//! ```
//!
//! Input is one tuple per line: a decimal `u64` key, optionally followed by
//! a space and an arbitrary payload string. Output uses the same format.
//! The address defaults to `$MASORT_ADDR`, then `127.0.0.1:7878`.

use std::io::{self, BufRead, BufWriter, Write};
use std::process::ExitCode;

use masort_core::{Payload, Tuple};
use masort_server::{server_stats, shutdown_server, SortClient, SubmitSpec};

const INGEST_CHUNK: usize = 4096;

fn usage() -> &'static str {
    "usage: masort-cli [sort] [--addr HOST:PORT] [--tenant NAME] [--priority N]\n\
     \u{20}                 [--budget PAGES] [--min-pages N] [--max-pages N]\n\
     \u{20}                 [--page-size BYTES] [--tuple-size BYTES] [--cpu-threads N]\n\
     \u{20}                 [--spill] [--descending]  < input > output\n\
     \u{20}      masort-cli shutdown [--addr HOST:PORT]\n\
     \u{20}      masort-cli stats    [--addr HOST:PORT]"
}

fn default_addr() -> String {
    std::env::var("MASORT_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string())
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("`{raw}` is not a number"))
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = match args.first().map(String::as_str) {
        Some("sort") => {
            args.remove(0);
            "sort"
        }
        Some("shutdown") => {
            args.remove(0);
            "shutdown"
        }
        Some("stats") => {
            args.remove(0);
            "stats"
        }
        Some(s) if !s.starts_with("--") => {
            return Err(format!("unknown command `{s}`\n{}", usage()))
        }
        _ => "sort",
    };

    let mut addr = default_addr();
    let mut tenant: Option<String> = None;
    let mut spec = SubmitSpec::default();
    let mut iter = args.into_iter();
    let value = |flag: &str, iter: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        iter.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = value("--addr", &mut iter)?,
            "--tenant" => tenant = Some(value("--tenant", &mut iter)?),
            "--priority" => spec.priority = parse_u64(&value("--priority", &mut iter)?)? as u32,
            "--budget" => spec.memory_pages = parse_u64(&value("--budget", &mut iter)?)?,
            "--min-pages" => spec.min_pages = parse_u64(&value("--min-pages", &mut iter)?)?,
            "--max-pages" => spec.max_pages = parse_u64(&value("--max-pages", &mut iter)?)?,
            "--page-size" => spec.page_size = parse_u64(&value("--page-size", &mut iter)?)?,
            "--tuple-size" => spec.tuple_size = parse_u64(&value("--tuple-size", &mut iter)?)?,
            "--cpu-threads" => {
                spec.cpu_threads = parse_u64(&value("--cpu-threads", &mut iter)?)? as u32
            }
            "--spill" => spec.spill = true,
            "--descending" => spec.descending = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }

    match command {
        "shutdown" => {
            let summary = shutdown_server(&addr).map_err(|e| e.to_string())?;
            eprintln!(
                "server draining: {} completed, {} failed, {} cancelled, {} leaked pages",
                summary.completed, summary.failed, summary.cancelled, summary.leaked_pages
            );
            Ok(())
        }
        "stats" => {
            let s = server_stats(&addr).map_err(|e| e.to_string())?;
            println!(
                "pool_pages={} live={} queued={} submitted={} completed={} failed={} \
                 rejected={} cancelled={} leaked_pages={} reallocations={}",
                s.pool_pages,
                s.live_jobs,
                s.queued_jobs,
                s.submitted,
                s.completed,
                s.failed,
                s.rejected,
                s.cancelled,
                s.leaked_pages,
                s.total_reallocations,
            );
            Ok(())
        }
        _ => sort(&addr, tenant.as_deref(), spec),
    }
}

fn sort(addr: &str, tenant: Option<&str>, spec: SubmitSpec) -> Result<(), String> {
    let mut client = SortClient::connect(addr, tenant).map_err(|e| e.to_string())?;
    client.submit(spec).map_err(|e| e.to_string())?;

    let stdin = io::stdin();
    let mut chunk: Vec<Tuple> = Vec::with_capacity(INGEST_CHUNK);
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (key, payload) = match trimmed.split_once(' ') {
            Some((key, rest)) => (key, rest.as_bytes().to_vec()),
            None => (trimmed, Vec::new()),
        };
        let key = key
            .parse::<u64>()
            .map_err(|_| format!("line {}: `{key}` is not a u64 key", lineno + 1))?;
        chunk.push(Tuple::new(key, payload));
        if chunk.len() >= INGEST_CHUNK {
            client
                .ingest(std::mem::take(&mut chunk))
                .map_err(|e| e.to_string())?;
            chunk.reserve(INGEST_CHUNK);
        }
    }
    if !chunk.is_empty() {
        client.ingest(chunk).map_err(|e| e.to_string())?;
    }

    let mut completed = client.finish().map_err(|e| e.to_string())?;
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for tuple in &mut completed {
        let tuple = tuple.map_err(|e| e.to_string())?;
        match &tuple.payload {
            Payload::Bytes(b) if !b.is_empty() => {
                write!(out, "{} ", tuple.key).map_err(|e| e.to_string())?;
                out.write_all(b).map_err(|e| e.to_string())?;
                writeln!(out).map_err(|e| e.to_string())?;
            }
            _ => writeln!(out, "{}", tuple.key).map_err(|e| e.to_string())?,
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    if let Some(summary) = completed.summary() {
        eprintln!(
            "sorted {} tuples in {:.3}s (queued {:.3}s, {} runs, {} merge steps, \
             {} reallocations, initial grant {} pages)",
            summary.tuples,
            summary.ran_for,
            summary.queued_for,
            summary.runs_formed,
            summary.merge_steps,
            summary.reallocations,
            summary.initial_grant,
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("masort-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}
