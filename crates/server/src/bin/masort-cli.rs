//! `masort-cli` — sort stdin through a remote masort-server.
//!
//! ```text
//! masort-cli [sort] [--addr HOST:PORT] [--tenant NAME] [--priority N]
//!            [--budget PAGES] [--min-pages N] [--max-pages N]
//!            [--page-size BYTES] [--tuple-size BYTES] [--cpu-threads N]
//!            [--spill] [--descending] [--adaptive|--no-adaptive]
//!            < input > output
//! masort-cli shutdown [--addr HOST:PORT]
//! masort-cli stats    [--addr HOST:PORT]
//! masort-cli metrics  [--addr HOST:PORT] [--prometheus]
//! masort-cli trace JOB [--addr HOST:PORT] [--json]
//! ```
//!
//! Input is one tuple per line: a decimal `u64` key, optionally followed by
//! a space and an arbitrary payload string. Output uses the same format.
//! The address defaults to `$MASORT_ADDR`, then `127.0.0.1:7878`.
//!
//! `metrics` fetches the server's metrics registry (JSON by default,
//! `--prometheus` for text exposition); `trace JOB` fetches one job's event
//! timeline and renders it as an ASCII grant-level chart (`--json` for the
//! raw document).

use std::io::{self, BufRead, BufWriter, Write};
use std::process::ExitCode;

use masort_core::{Payload, Tuple};
use masort_server::{
    fetch_metrics, fetch_trace, server_stats, shutdown_server, SortClient, SubmitSpec,
};
use masort_trace::{
    metrics_from_json, metrics_to_prometheus, render_timeline, trace_from_json, JsonValue,
};

const INGEST_CHUNK: usize = 4096;

fn usage() -> &'static str {
    "usage: masort-cli [sort] [--addr HOST:PORT] [--tenant NAME] [--priority N]\n\
     \u{20}                 [--budget PAGES] [--min-pages N] [--max-pages N]\n\
     \u{20}                 [--page-size BYTES] [--tuple-size BYTES] [--cpu-threads N]\n\
     \u{20}                 [--spill] [--descending] [--adaptive|--no-adaptive]\n\
     \u{20}                 < input > output\n\
     \u{20}      masort-cli shutdown [--addr HOST:PORT]\n\
     \u{20}      masort-cli stats    [--addr HOST:PORT]\n\
     \u{20}      masort-cli metrics  [--addr HOST:PORT] [--prometheus]\n\
     \u{20}      masort-cli trace JOB [--addr HOST:PORT] [--json]"
}

fn default_addr() -> String {
    std::env::var("MASORT_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string())
}

fn parse_u64(raw: &str) -> Result<u64, String> {
    raw.parse::<u64>()
        .map_err(|_| format!("`{raw}` is not a number"))
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let command = match args.first().map(String::as_str) {
        Some("sort") => {
            args.remove(0);
            "sort"
        }
        Some("shutdown") => {
            args.remove(0);
            "shutdown"
        }
        Some("stats") => {
            args.remove(0);
            "stats"
        }
        Some("metrics") => {
            args.remove(0);
            "metrics"
        }
        Some("trace") => {
            args.remove(0);
            "trace"
        }
        Some(s) if !s.starts_with("--") => {
            return Err(format!("unknown command `{s}`\n{}", usage()))
        }
        _ => "sort",
    };
    let trace_job = if command == "trace" {
        if args.is_empty() || args[0].starts_with("--") {
            return Err(format!("trace needs a job id\n{}", usage()));
        }
        parse_u64(&args.remove(0))?
    } else {
        0
    };

    let mut addr = default_addr();
    let mut tenant: Option<String> = None;
    let mut prometheus = false;
    let mut raw_json = false;
    let mut spec = SubmitSpec::default();
    let mut iter = args.into_iter();
    let value = |flag: &str, iter: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        iter.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--addr" => addr = value("--addr", &mut iter)?,
            "--tenant" => tenant = Some(value("--tenant", &mut iter)?),
            "--priority" => spec.priority = parse_u64(&value("--priority", &mut iter)?)? as u32,
            "--budget" => spec.memory_pages = parse_u64(&value("--budget", &mut iter)?)?,
            "--min-pages" => spec.min_pages = parse_u64(&value("--min-pages", &mut iter)?)?,
            "--max-pages" => spec.max_pages = parse_u64(&value("--max-pages", &mut iter)?)?,
            "--page-size" => spec.page_size = parse_u64(&value("--page-size", &mut iter)?)?,
            "--tuple-size" => spec.tuple_size = parse_u64(&value("--tuple-size", &mut iter)?)?,
            "--cpu-threads" => {
                spec.cpu_threads = parse_u64(&value("--cpu-threads", &mut iter)?)? as u32
            }
            "--spill" => spec.spill = true,
            "--descending" => spec.descending = true,
            "--adaptive" => spec.adaptive = Some(true),
            "--no-adaptive" => spec.adaptive = Some(false),
            "--prometheus" => prometheus = true,
            "--json" => raw_json = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }

    match command {
        "shutdown" => {
            let summary = shutdown_server(&addr).map_err(|e| e.to_string())?;
            eprintln!(
                "server draining: {} completed, {} failed, {} cancelled, {} leaked pages",
                summary.completed, summary.failed, summary.cancelled, summary.leaked_pages
            );
            Ok(())
        }
        "stats" => {
            let s = server_stats(&addr).map_err(|e| e.to_string())?;
            let rows: [(&str, u64); 10] = [
                ("pool pages", s.pool_pages),
                ("live jobs", s.live_jobs),
                ("queued jobs", s.queued_jobs),
                ("submitted", s.submitted),
                ("completed", s.completed),
                ("failed", s.failed),
                ("rejected", s.rejected),
                ("cancelled", s.cancelled),
                ("leaked pages", s.leaked_pages),
                ("reallocations", s.total_reallocations),
            ];
            let width = rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            for (key, value) in rows {
                println!("{key:<width$}  {value:>12}");
            }
            Ok(())
        }
        "metrics" => {
            let json = fetch_metrics(&addr).map_err(|e| e.to_string())?;
            if prometheus {
                let doc = JsonValue::parse(&json).map_err(|e| format!("metrics JSON: {e}"))?;
                print!("{}", metrics_to_prometheus(&metrics_from_json(&doc)));
            } else {
                println!("{json}");
            }
            Ok(())
        }
        "trace" => {
            let json = fetch_trace(&addr, trace_job).map_err(|e| e.to_string())?;
            if raw_json {
                println!("{json}");
            } else {
                let doc = JsonValue::parse(&json).map_err(|e| format!("trace JSON: {e}"))?;
                let snapshot = trace_from_json(&doc);
                print!("{}", render_timeline(&snapshot.events));
            }
            Ok(())
        }
        _ => sort(&addr, tenant.as_deref(), spec),
    }
}

fn sort(addr: &str, tenant: Option<&str>, spec: SubmitSpec) -> Result<(), String> {
    let mut client = SortClient::connect(addr, tenant).map_err(|e| e.to_string())?;
    client.submit(spec).map_err(|e| e.to_string())?;

    let stdin = io::stdin();
    let mut chunk: Vec<Tuple> = Vec::with_capacity(INGEST_CHUNK);
    for (lineno, line) in stdin.lock().lines().enumerate() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let (key, payload) = match trimmed.split_once(' ') {
            Some((key, rest)) => (key, rest.as_bytes().to_vec()),
            None => (trimmed, Vec::new()),
        };
        let key = key
            .parse::<u64>()
            .map_err(|_| format!("line {}: `{key}` is not a u64 key", lineno + 1))?;
        chunk.push(Tuple::new(key, payload));
        if chunk.len() >= INGEST_CHUNK {
            client
                .ingest(std::mem::take(&mut chunk))
                .map_err(|e| e.to_string())?;
            chunk.reserve(INGEST_CHUNK);
        }
    }
    if !chunk.is_empty() {
        client.ingest(chunk).map_err(|e| e.to_string())?;
    }

    let mut completed = client.finish().map_err(|e| e.to_string())?;
    let stdout = io::stdout();
    let mut out = BufWriter::new(stdout.lock());
    for tuple in &mut completed {
        let tuple = tuple.map_err(|e| e.to_string())?;
        match &tuple.payload {
            Payload::Bytes(b) if !b.is_empty() => {
                write!(out, "{} ", tuple.key).map_err(|e| e.to_string())?;
                out.write_all(b).map_err(|e| e.to_string())?;
                writeln!(out).map_err(|e| e.to_string())?;
            }
            _ => writeln!(out, "{}", tuple.key).map_err(|e| e.to_string())?,
        }
    }
    out.flush().map_err(|e| e.to_string())?;
    if let Some(summary) = completed.summary() {
        eprintln!(
            "sorted {} tuples in {:.3}s (queued {:.3}s, {} runs, {} merge steps, \
             {} reallocations, initial grant {} pages)",
            summary.tuples,
            summary.ran_for,
            summary.queued_for,
            summary.runs_formed,
            summary.merge_steps,
            summary.reallocations,
            summary.initial_grant,
        );
        if summary.runs_formed > 0 {
            eprintln!(
                "run lengths: min {} / avg {:.1} / max {} tuples, \
                 {} natural runs detected",
                summary.min_run_tuples,
                summary.avg_run_tuples,
                summary.max_run_tuples,
                summary.natural_runs,
            );
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("masort-cli: {msg}");
            ExitCode::FAILURE
        }
    }
}
