//! `masort-server` — serve a memory-adaptive sort pool over TCP.
//!
//! ```text
//! masort-server [--addr 127.0.0.1:7878] [--pool-pages 64] [--workers 4]
//!               [--policy equal|priority|min-guarantee]
//!               [--io-threads N] [--io-pipeline N] [--cpu-threads N]
//!               [--page-size BYTES] [--tuple-size BYTES] [--memory-pages N]
//!               [--ingest-depth PAGES] [--egress-chunk TUPLES]
//!               [--tenant name=max_live:max_pages[:priority]]...
//! ```
//!
//! Runs until a client sends a `SHUTDOWN` frame (`masort-cli shutdown`),
//! then drains in-flight sorts and prints the final service statistics.

use std::process::ExitCode;

use masort_core::SortConfig;
use masort_server::{Server, TenantQuota};

fn usage() -> &'static str {
    "usage: masort-server [--addr HOST:PORT] [--pool-pages N] [--workers N]\n\
     \u{20}                    [--policy equal|priority|min-guarantee]\n\
     \u{20}                    [--io-threads N] [--io-pipeline N] [--cpu-threads N]\n\
     \u{20}                    [--page-size BYTES] [--tuple-size BYTES] [--memory-pages N]\n\
     \u{20}                    [--ingest-depth PAGES] [--egress-chunk TUPLES]\n\
     \u{20}                    [--tenant name=max_live:max_pages[:priority]]..."
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut builder = Server::builder();
    let mut page_size = 4096usize;
    let mut tuple_size = 64usize;
    let mut memory_pages = 16usize;

    let mut args = std::env::args().skip(1);
    let value = |flag: &str, args: &mut dyn Iterator<Item = String>| -> Result<String, String> {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = value("--addr", &mut args)?,
            "--pool-pages" => {
                builder = builder.pool_pages(parse(&value("--pool-pages", &mut args)?)?)
            }
            "--workers" => builder = builder.workers(parse(&value("--workers", &mut args)?)?),
            "--policy" => builder = builder.policy(value("--policy", &mut args)?.parse()?),
            "--io-threads" => {
                builder = builder.io_threads(parse(&value("--io-threads", &mut args)?)?)
            }
            "--io-pipeline" => {
                builder = builder.io_pipeline(parse(&value("--io-pipeline", &mut args)?)?)
            }
            "--cpu-threads" => {
                builder = builder.cpu_threads(parse(&value("--cpu-threads", &mut args)?)?)
            }
            "--page-size" => page_size = parse(&value("--page-size", &mut args)?)?,
            "--tuple-size" => tuple_size = parse(&value("--tuple-size", &mut args)?)?,
            "--memory-pages" => memory_pages = parse(&value("--memory-pages", &mut args)?)?,
            "--ingest-depth" => {
                builder = builder.ingest_depth(parse(&value("--ingest-depth", &mut args)?)?)
            }
            "--egress-chunk" => {
                builder = builder.egress_chunk(parse(&value("--egress-chunk", &mut args)?)?)
            }
            "--tenant" => {
                let (name, quota) = TenantQuota::parse(&value("--tenant", &mut args)?)?;
                builder = builder.tenant(name, quota);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(());
            }
            other => return Err(format!("unknown flag `{other}`\n{}", usage())),
        }
    }
    builder = builder.base_config(
        SortConfig::default()
            .with_page_size(page_size)
            .with_tuple_size(tuple_size)
            .with_memory_pages(memory_pages),
    );

    let server = builder
        .bind(&addr)
        .map_err(|e| format!("failed to bind {addr}: {e}"))?;
    eprintln!("masort-server listening on {}", server.local_addr());
    let stats = server.run();
    eprintln!(
        "masort-server: {} submitted, {} completed, {} failed, {} rejected, {} cancelled, \
         {} rebalances, {} leaked pages",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.rejected,
        stats.cancelled,
        stats.rebalances,
        stats.leaked_pages,
    );
    Ok(())
}

fn parse(raw: &str) -> Result<usize, String> {
    raw.parse::<usize>()
        .map_err(|_| format!("`{raw}` is not a number"))
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("masort-server: {msg}");
            ExitCode::FAILURE
        }
    }
}
