//! Wire-protocol robustness: randomized round-trips for every frame type,
//! and a fuzz pass proving malformed bytes produce clean errors — never
//! panics, never oversized allocations.

use std::io;

use masort_core::Tuple;
use masort_server::codec::{decode_frame, encode_frame, read_frame, write_frame};
use masort_server::{ErrorCode, Frame, JobSummary, ServerSummary, SubmitSpec, WireError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len as u64) as usize;
    (0..len)
        .map(|_| char::from(b'a' + (rng.next_u64() % 26) as u8))
        .collect()
}

fn random_tuples(rng: &mut StdRng, max: usize) -> Vec<Tuple> {
    let count = rng.gen_range(0..=max as u64) as usize;
    (0..count)
        .map(|_| {
            let key = rng.next_u64();
            if rng.gen_bool(0.5) {
                Tuple::synthetic(key, (rng.next_u64() % 256) as usize)
            } else {
                let len = (rng.next_u64() % 64) as usize;
                Tuple::new(key, (0..len).map(|_| rng.next_u64() as u8).collect())
            }
        })
        .collect()
}

fn random_error_code(rng: &mut StdRng) -> ErrorCode {
    ErrorCode::from_u8((rng.next_u64() % 9) as u8 + 1).unwrap()
}

fn random_frame(rng: &mut StdRng) -> Frame {
    match rng.next_u64() % 13 {
        0 => Frame::Hello {
            version: rng.next_u64() as u32,
            tenant: if rng.gen_bool(0.5) {
                Some(random_string(rng, 24))
            } else {
                None
            },
        },
        1 => Frame::Welcome {
            version: rng.next_u64() as u32,
            pool_pages: rng.next_u64(),
            policy: random_string(rng, 24),
        },
        2 => Frame::Submit(SubmitSpec {
            priority: rng.next_u64() as u32,
            min_pages: rng.next_u64(),
            max_pages: rng.next_u64(),
            memory_pages: rng.next_u64(),
            page_size: rng.next_u64(),
            tuple_size: rng.next_u64(),
            cpu_threads: rng.next_u64() as u32,
            expected_tuples: rng.next_u64(),
            spill: rng.gen_bool(0.5),
            descending: rng.gen_bool(0.5),
            adaptive: match rng.next_u64() % 3 {
                0 => None,
                1 => Some(true),
                _ => Some(false),
            },
        }),
        3 => Frame::Accepted {
            job: rng.next_u64(),
        },
        4 => Frame::Ingest(random_tuples(rng, 64)),
        5 => Frame::Fin,
        6 => Frame::Egress(random_tuples(rng, 64)),
        7 => Frame::Stats(JobSummary {
            job: rng.next_u64(),
            tuples: rng.next_u64(),
            queued_for: rng.gen_range(0.0..=1.0e6),
            ran_for: rng.gen_range(0.0..=1.0e6),
            initial_grant: rng.next_u64(),
            reallocations: rng.next_u64(),
            delay_samples: rng.next_u64(),
            total_delay: rng.gen_range(0.0..=1.0e6),
            runs_formed: rng.next_u64(),
            merge_steps: rng.next_u64(),
            natural_runs: rng.next_u64(),
            min_run_tuples: rng.next_u64(),
            max_run_tuples: rng.next_u64(),
            avg_run_tuples: rng.gen_range(0.0..=1.0e9),
        }),
        8 => Frame::Error(WireError {
            code: random_error_code(rng),
            needed: rng.next_u64(),
            granted: rng.next_u64(),
            message: random_string(rng, 120),
        }),
        9 => Frame::Cancel,
        10 => Frame::Shutdown,
        11 => Frame::StatsReq,
        _ => Frame::ServerStats(ServerSummary {
            pool_pages: rng.next_u64(),
            live_jobs: rng.next_u64(),
            queued_jobs: rng.next_u64(),
            submitted: rng.next_u64(),
            completed: rng.next_u64(),
            failed: rng.next_u64(),
            rejected: rng.next_u64(),
            cancelled: rng.next_u64(),
            leaked_pages: rng.next_u64(),
            total_reallocations: rng.next_u64(),
        }),
    }
}

#[test]
fn randomized_frames_round_trip_exactly() {
    let mut rng = StdRng::seed_from_u64(0x5EED_F4A3);
    for _ in 0..2_000 {
        let frame = random_frame(&mut rng);
        let body = encode_frame(&frame);
        let decoded = decode_frame(&body).expect("well-formed body decodes");
        assert_eq!(decoded, frame);
    }
}

#[test]
fn randomized_frames_survive_the_framed_stream() {
    let mut rng = StdRng::seed_from_u64(0xD0DE_C0DE);
    let frames: Vec<Frame> = (0..256).map(|_| random_frame(&mut rng)).collect();
    let mut wire = Vec::new();
    for frame in &frames {
        write_frame(&mut wire, frame).unwrap();
    }
    let mut r = io::Cursor::new(wire);
    for frame in &frames {
        assert_eq!(read_frame(&mut r).unwrap().as_ref(), Some(frame));
    }
    assert_eq!(read_frame(&mut r).unwrap(), None, "clean end of stream");
}

/// Decoding never panics and never reports success on garbage: any random
/// mutation of a valid body either decodes to *some* frame (single bit flips
/// in integer fields are legal) or fails with `InvalidData`/`UnexpectedEof`.
#[test]
fn mutated_bodies_fail_cleanly_or_decode() {
    let mut rng = StdRng::seed_from_u64(0xBAD_F00D);
    for _ in 0..2_000 {
        let frame = random_frame(&mut rng);
        let mut body = encode_frame(&frame);
        match rng.next_u64() % 3 {
            // Truncate somewhere inside the body.
            0 => {
                let keep = (rng.next_u64() as usize) % body.len().max(1);
                body.truncate(keep);
            }
            // Flip a random byte.
            1 => {
                let at = (rng.next_u64() as usize) % body.len();
                body[at] ^= (rng.next_u64() as u8) | 1;
            }
            // Append trailing garbage.
            _ => {
                let extra = 1 + (rng.next_u64() % 8) as usize;
                body.extend((0..extra).map(|_| rng.next_u64() as u8));
            }
        }
        // Must not panic; errors must be the protocol's own kinds.
        if let Err(e) = decode_frame(&body) {
            assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ),
                "unexpected error kind {:?}",
                e.kind()
            );
        }
    }
}

#[test]
fn garbage_opcodes_are_rejected() {
    for opcode in 0x12u8..=0xFF {
        let err = decode_frame(&[opcode]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData, "opcode {opcode:#X}");
    }
    assert_eq!(
        decode_frame(&[0x00]).unwrap_err().kind(),
        io::ErrorKind::InvalidData
    );
}

#[test]
fn truncated_length_prefixes_fail_cleanly() {
    let mut wire = Vec::new();
    write_frame(&mut wire, &Frame::Fin).unwrap();
    for keep in 1..wire.len() {
        let partial = wire[..keep].to_vec();
        let err = read_frame(&mut io::Cursor::new(partial)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "keep={keep}");
    }
}

#[test]
fn hostile_length_prefixes_do_not_allocate() {
    // Claim a 4 GiB frame; the reader must reject the prefix outright.
    for claimed in [masort_server::MAX_FRAME_BYTES as u32 + 1, u32::MAX] {
        let mut wire = claimed.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
    // A zero-length body is equally meaningless.
    let wire = 0u32.to_le_bytes().to_vec();
    let err = read_frame(&mut io::Cursor::new(wire)).unwrap_err();
    assert_eq!(err.kind(), io::ErrorKind::InvalidData);
}

/// A tuple list whose count field promises far more tuples than the body
/// could hold must be rejected before any allocation is attempted.
#[test]
fn overclaimed_tuple_counts_are_rejected() {
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..200 {
        let mut body = vec![0x05]; // INGEST
        body.extend_from_slice(&(rng.next_u64() as u32 | 0x0100_0000).to_le_bytes());
        let pad = (rng.next_u64() % 32) as usize;
        body.extend((0..pad).map(|_| rng.next_u64() as u8));
        let err = decode_frame(&body).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
