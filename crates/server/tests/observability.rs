//! End-to-end observability: submit sorts over TCP, fetch `TRACE_REQ` /
//! `METRICS_REQ` over the wire, and check that the timeline and the registry
//! agree with each other and with what actually happened.

use std::thread;

use masort_core::{SortConfig, Tuple};
use masort_server::{
    fetch_metrics, fetch_trace, PolicyChoice, Server, ServerHandle, SortClient, SubmitSpec,
};
use masort_trace::{metrics_from_json, trace_from_json, EventKind, JsonValue};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TUPLE_SIZE: usize = 64;

fn small_server() -> ServerHandle {
    Server::builder()
        .pool_pages(8)
        .workers(4)
        .policy(PolicyChoice::PriorityWeighted)
        .base_config(
            SortConfig::default()
                .with_page_size(2048)
                .with_tuple_size(TUPLE_SIZE)
                .with_memory_pages(8),
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
}

fn shuffled_tuples(seed: u64, n: usize) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tuples: Vec<Tuple> = (0..n as u64)
        .map(|k| Tuple::synthetic(k, TUPLE_SIZE))
        .collect();
    for i in (1..tuples.len()).rev() {
        let j = rng.gen_range(0..=i as u64) as usize;
        tuples.swap(i, j);
    }
    tuples
}

/// Run one remote sort to completion, returning its job id.
fn remote_sort(addr: std::net::SocketAddr, seed: u64, n: usize) -> u64 {
    let mut client = SortClient::connect(addr, None).expect("connect");
    let job = client
        .submit(SubmitSpec {
            memory_pages: 8,
            expected_tuples: n as u64,
            ..SubmitSpec::default()
        })
        .expect("submit");
    for chunk in shuffled_tuples(seed, n).chunks(1500) {
        client.ingest(chunk.to_vec()).expect("ingest");
    }
    let (sorted, _) = client
        .finish()
        .expect("finish")
        .into_sorted_vec()
        .expect("drain");
    assert_eq!(sorted.len(), n);
    job
}

#[test]
fn traces_and_metrics_agree_over_the_wire() {
    let handle = small_server();
    let addr = handle.addr();

    // Several sorts that each want the whole 8-page pool: their budgets must
    // be re-divided as the mix changes, so the timelines carry reallocation
    // events beyond the initial grant.
    let clients = 4;
    let n = 4_000;
    let mut workers = Vec::new();
    for seed in 0..clients {
        workers.push(thread::spawn(move || remote_sort(addr, 40 + seed, n)));
    }
    let jobs: Vec<u64> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // Fetch every finished job's timeline over the wire.
    let mut granted_events = 0u64;
    let mut granted_pages = 0u64;
    let mut budget_targets = 0usize;
    let mut phase_starts = 0usize;
    for &job in &jobs {
        let json = fetch_trace(addr, job).expect("TRACE_REQ");
        let doc = JsonValue::parse(&json).expect("trace JSON parses");
        let snapshot = trace_from_json(&doc);
        assert!(
            !snapshot.events.is_empty(),
            "job {job} timeline must not be empty"
        );
        // Events arrive in recording order with non-decreasing timestamps.
        for pair in snapshot.events.windows(2) {
            assert!(pair[0].ts <= pair[1].ts, "job {job} timeline out of order");
        }
        for event in &snapshot.events {
            match event.kind {
                EventKind::AdmissionGranted { pages } => {
                    granted_events += 1;
                    granted_pages += pages as u64;
                }
                EventKind::BudgetTarget { .. } => budget_targets += 1,
                EventKind::PhaseStart { .. } => phase_starts += 1,
                _ => {}
            }
        }
    }
    assert!(
        granted_events >= 1,
        "expected at least one admission grant across {clients} jobs"
    );
    assert_eq!(
        granted_events, clients,
        "every admitted job records exactly one grant"
    );
    assert!(
        budget_targets >= 1,
        "four sorts contending for one pool must see at least one \
         budget reallocation in their timelines"
    );
    assert!(phase_starts >= 1, "sorts record their phase transitions");

    // The metrics registry must agree with the event timelines: the pages
    // counted by `pages_granted_total` are exactly the pages carried on
    // `admission_granted` events.
    let json = fetch_metrics(addr).expect("METRICS_REQ");
    let doc = JsonValue::parse(&json).expect("metrics JSON parses");
    let snapshot = metrics_from_json(&doc);
    assert_eq!(
        snapshot.counter("pages_granted_total", None),
        Some(granted_pages),
        "trace events and the metrics registry disagree on pages granted"
    );
    assert_eq!(
        snapshot.counter("jobs_submitted_total", None),
        Some(clients),
        "every submission counted"
    );
    assert_eq!(
        snapshot.counter("jobs_completed_total", None),
        Some(clients),
        "every completion counted"
    );

    let stats = handle.join();
    assert_eq!(stats.completed, clients);
    assert_eq!(stats.leaked_pages, 0);
}
