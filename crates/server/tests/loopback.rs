//! End-to-end tests against a real listening server: correctness under
//! contention, typed refusals, cancellation, disconnect cleanup, quotas and
//! graceful shutdown.

use std::io::Write;
use std::net::TcpStream;
use std::thread;
use std::time::{Duration, Instant};

use masort_core::{SortConfig, Tuple};
use masort_server::{
    server_stats, shutdown_server, ClientError, ErrorCode, PolicyChoice, Server, ServerHandle,
    SortClient, SubmitSpec, TenantQuota,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const TUPLE_SIZE: usize = 64;

fn small_server() -> ServerHandle {
    Server::builder()
        .pool_pages(8)
        .workers(4)
        .policy(PolicyChoice::PriorityWeighted)
        .base_config(
            SortConfig::default()
                .with_page_size(2048)
                .with_tuple_size(TUPLE_SIZE)
                .with_memory_pages(8),
        )
        .bind("127.0.0.1:0")
        .expect("bind loopback")
        .spawn()
}

fn shuffled_tuples(seed: u64, n: usize) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tuples: Vec<Tuple> = (0..n as u64)
        .map(|k| Tuple::synthetic(k, TUPLE_SIZE))
        .collect();
    for i in (1..tuples.len()).rev() {
        let j = rng.gen_range(0..=i as u64) as usize;
        tuples.swap(i, j);
    }
    tuples
}

fn remote_sort(addr: std::net::SocketAddr, seed: u64, n: usize) -> (Vec<Tuple>, u64) {
    let mut client = SortClient::connect(addr, None).expect("connect");
    client
        .submit(SubmitSpec {
            memory_pages: 8,
            expected_tuples: n as u64,
            ..SubmitSpec::default()
        })
        .expect("submit");
    for chunk in shuffled_tuples(seed, n).chunks(1500) {
        client.ingest(chunk.to_vec()).expect("ingest");
    }
    let completed = client.finish().expect("finish");
    let (sorted, summary) = completed.into_sorted_vec().expect("drain");
    (sorted, summary.reallocations)
}

#[test]
fn a_remote_sort_is_byte_identical_to_a_local_sort() {
    let handle = small_server();
    let n = 6_000;
    let (sorted, _) = remote_sort(handle.addr(), 1, n);
    assert_eq!(sorted.len(), n);
    let mut expected = shuffled_tuples(1, n);
    expected.sort_by_key(|t| t.key);
    assert_eq!(sorted, expected, "remote result must equal the local sort");
    let stats = handle.join();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.leaked_pages, 0);
}

#[test]
fn concurrent_clients_each_get_their_own_correct_result() {
    let handle = small_server();
    let addr = handle.addr();
    let clients = 8;
    let n = 4_000;
    let mut workers = Vec::new();
    for seed in 0..clients {
        workers.push(thread::spawn(move || remote_sort(addr, 100 + seed, n)));
    }
    let mut total_reallocations = 0;
    for (seed, worker) in (0..clients).zip(workers) {
        let (sorted, reallocations) = worker.join().expect("client thread");
        total_reallocations += reallocations;
        let mut expected = shuffled_tuples(100 + seed, n);
        expected.sort_by_key(|t| t.key);
        assert_eq!(sorted, expected, "client {seed}");
    }
    // Eight sorts that each want the whole 8-page pool must have had their
    // budgets re-divided at least once as the mix changed.
    assert!(
        total_reallocations >= 1,
        "expected at least one mid-flight reallocation across {clients} clients"
    );
    let stats = handle.join();
    assert_eq!(stats.completed, clients);
    assert_eq!(stats.leaked_pages, 0);
}

#[test]
fn an_impossible_minimum_gets_a_typed_budget_starved_frame() {
    let handle = small_server();
    let mut client = SortClient::connect(handle.addr(), None).expect("connect");
    let err = client
        .submit(SubmitSpec {
            min_pages: 64, // pool is 8
            memory_pages: 64,
            ..SubmitSpec::default()
        })
        .expect_err("a minimum above the pool must be refused");
    match err {
        ClientError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::BudgetStarved);
            assert_eq!(e.needed, 64);
            assert_eq!(e.granted, 8);
        }
        other => panic!("expected a remote BudgetStarved error, got {other}"),
    }
    let stats = handle.join();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.leaked_pages, 0);
}

#[test]
fn cancelling_mid_ingest_aborts_the_job_and_leaks_nothing() {
    let handle = small_server();
    let addr = handle.addr();
    let mut client = SortClient::connect(addr, None).expect("connect");
    client
        .submit(SubmitSpec {
            memory_pages: 8,
            ..SubmitSpec::default()
        })
        .expect("submit");
    // Push enough input that the sort is genuinely under way...
    for chunk in shuffled_tuples(7, 20_000).chunks(2_000).take(5) {
        client.ingest(chunk.to_vec()).expect("ingest");
    }
    // ... then abort it.
    let err = client.cancel().expect("cancel handshake");
    assert_eq!(err.code, ErrorCode::Cancelled, "{err}");

    // The cancelled job must leave the pool whole: a sort that needs every
    // page can only be admitted if all 8 came back.
    let (sorted, _) = remote_sort(addr, 8, 2_000);
    assert_eq!(sorted.len(), 2_000);
    let stats = handle.join();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.leaked_pages, 0);
}

#[test]
fn a_client_that_vanishes_mid_ingest_leaves_no_trace() {
    let handle = small_server();
    let addr = handle.addr();
    {
        let mut client = SortClient::connect(addr, None).expect("connect");
        client
            .submit(SubmitSpec {
                memory_pages: 8,
                spill: true, // exercise on-disk run cleanup too
                ..SubmitSpec::default()
            })
            .expect("submit");
        for chunk in shuffled_tuples(9, 20_000).chunks(2_000).take(4) {
            client.ingest(chunk.to_vec()).expect("ingest");
        }
        // Drop the connection on the floor, mid-ingest.
    }
    // Wait until the server has noticed and torn the job down.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let s = server_stats(addr).expect("stats");
        if s.cancelled >= 1 && s.live_jobs == 0 && s.queued_jobs == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never cleaned up the abandoned job: {s:?}"
        );
        thread::sleep(Duration::from_millis(50));
    }
    // Every page is back: a min_pages == pool sort admits and completes.
    let mut client = SortClient::connect(addr, None).expect("connect");
    client
        .submit(SubmitSpec {
            min_pages: 8,
            memory_pages: 8,
            ..SubmitSpec::default()
        })
        .expect("submit");
    client.ingest(shuffled_tuples(10, 3_000)).expect("ingest");
    let (sorted, _) = client
        .finish()
        .expect("finish")
        .into_sorted_vec()
        .expect("drain");
    assert_eq!(sorted.len(), 3_000);
    let stats = handle.join();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.leaked_pages, 0);
}

#[test]
fn tenant_quotas_bound_live_jobs_and_override_priority() {
    let handle = Server::builder()
        .pool_pages(8)
        .workers(4)
        .base_config(
            SortConfig::default()
                .with_page_size(2048)
                .with_tuple_size(TUPLE_SIZE)
                .with_memory_pages(8),
        )
        .tenant(
            "acme",
            TenantQuota {
                max_live: 1,
                max_pages: 4,
                priority: 2,
            },
        )
        .bind("127.0.0.1:0")
        .expect("bind")
        .spawn();
    let addr = handle.addr();

    // First acme sort occupies the tenant's only slot (still ingesting).
    let mut first = SortClient::connect(addr, Some("acme")).expect("connect");
    first
        .submit(SubmitSpec::default())
        .expect("first submit fits the quota");
    first.ingest(shuffled_tuples(3, 2_000)).expect("ingest");

    // Second concurrent acme sort is over max_live.
    let mut second = SortClient::connect(addr, Some("acme")).expect("connect");
    let err = second
        .submit(SubmitSpec::default())
        .expect_err("second concurrent sort must exceed the quota");
    match err {
        ClientError::Remote(e) => {
            assert_eq!(e.code, ErrorCode::QuotaExceeded);
            assert_eq!(e.granted, 1);
        }
        other => panic!("expected QuotaExceeded, got {other}"),
    }

    // A minimum above the tenant's page cap is refused even though the pool
    // could cover it.
    let mut third = SortClient::connect(addr, Some("bigco")).expect("connect");
    third
        .submit(SubmitSpec {
            min_pages: 6,
            memory_pages: 8,
            ..SubmitSpec::default()
        })
        .expect("an unquota'd tenant may use the whole pool");
    drop(third); // abandons its job; cleanup is covered elsewhere

    let mut capped = SortClient::connect(addr, Some("acme")).expect("connect");
    let err = capped
        .submit(SubmitSpec {
            min_pages: 6,
            ..SubmitSpec::default()
        })
        .expect_err("min_pages above the tenant page cap must be refused");
    // The tenant's only live slot is still taken by `first`, so this arrives
    // as either QuotaExceeded flavour; both carry the quota code.
    match err {
        ClientError::Remote(e) => assert_eq!(e.code, ErrorCode::QuotaExceeded),
        other => panic!("expected QuotaExceeded, got {other}"),
    }

    // Finish the first sort; its grant must respect the 4-page tenant cap.
    let (sorted, summary) = first
        .finish()
        .expect("finish")
        .into_sorted_vec()
        .expect("drain");
    assert_eq!(sorted.len(), 2_000);
    assert!(
        summary.initial_grant <= 4,
        "tenant page cap ignored: granted {}",
        summary.initial_grant
    );
    handle.join();
}

#[test]
fn version_mismatch_and_garbage_bytes_get_clean_refusals() {
    let handle = small_server();
    let addr = handle.addr();

    // A well-formed HELLO with the wrong version: typed protocol error.
    use masort_server::codec::{read_frame, write_frame};
    use masort_server::Frame;
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
    let mut writer = std::io::BufWriter::new(stream);
    write_frame(
        &mut writer,
        &Frame::Hello {
            version: 999,
            tenant: None,
        },
    )
    .unwrap();
    writer.flush().unwrap();
    match read_frame(&mut reader).expect("server answers") {
        Some(Frame::Error(e)) => assert_eq!(e.code, ErrorCode::Protocol),
        other => panic!("expected a protocol error frame, got {other:?}"),
    }

    // Raw garbage: the server must drop the connection without panicking and
    // keep serving.
    let mut garbage = TcpStream::connect(addr).expect("connect");
    garbage.write_all(&[0xFF; 512]).expect("write garbage");
    drop(garbage);

    let (sorted, _) = remote_sort(addr, 11, 1_000);
    assert_eq!(sorted.len(), 1_000);
    let stats = handle.join();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.leaked_pages, 0);
}

#[test]
fn shutdown_drains_inflight_sorts_before_exiting() {
    let handle = small_server();
    let addr = handle.addr();

    // Get a sort fully ingested and waiting on egress.
    let mut client = SortClient::connect(addr, None).expect("connect");
    client
        .submit(SubmitSpec {
            memory_pages: 8,
            ..SubmitSpec::default()
        })
        .expect("submit");
    client.ingest(shuffled_tuples(13, 8_000)).expect("ingest");
    let mut completed = client.finish().expect("finish");
    // Pull one chunk so the session is mid-egress, then ask for shutdown.
    let first = completed.next().expect("at least one tuple").expect("ok");
    let summary = shutdown_server(addr).expect("shutdown handshake");
    assert!(summary.submitted >= 1);

    // The in-flight egress must still complete, sorted and whole.
    let mut previous = first.key;
    let mut count = 1usize;
    for tuple in completed {
        let tuple = tuple.expect("egress continues through shutdown");
        assert!(tuple.key >= previous);
        previous = tuple.key;
        count += 1;
    }
    assert_eq!(count, 8_000);

    let stats = handle.join();
    assert_eq!(stats.completed, 1);
    assert_eq!(stats.leaked_pages, 0);

    // And the listener is gone: new connections are refused.
    assert!(
        TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener should be closed after shutdown"
    );
}
