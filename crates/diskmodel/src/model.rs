//! The timed disk model: head tracking, access costing, and multi-disk
//! horizontal partitioning.

use crate::geometry::DiskGeometry;

/// Whether an access reads or writes (writes to sequential positions get a
/// small pipelining discount, standing in for the paper's asynchronous write
/// requests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// A read request.
    Read,
    /// A write request.
    Write,
}

/// One simulated disk: geometry plus current head position and accumulated
/// busy time.
#[derive(Clone, Debug)]
pub struct DiskModel {
    geometry: DiskGeometry,
    head: usize,
    busy_time: f64,
    accesses: u64,
    pages_moved: u64,
}

impl DiskModel {
    /// Create a disk with its head parked on cylinder 0.
    pub fn new(geometry: DiskGeometry) -> Self {
        DiskModel {
            geometry,
            head: 0,
            busy_time: 0.0,
            accesses: 0,
            pages_moved: 0,
        }
    }

    /// The disk's geometry.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Current head cylinder.
    pub fn head(&self) -> usize {
        self.head
    }

    /// Total time this disk has spent servicing requests.
    pub fn busy_time(&self) -> f64 {
        self.busy_time
    }

    /// Number of requests serviced.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Number of pages transferred.
    pub fn pages_moved(&self) -> u64 {
        self.pages_moved
    }

    /// Average time per page moved (0 if nothing moved yet).
    pub fn avg_page_time(&self) -> f64 {
        if self.pages_moved == 0 {
            0.0
        } else {
            self.busy_time / self.pages_moved as f64
        }
    }

    /// Service one request: move the head to `cylinder` and transfer `pages`
    /// consecutive pages. Returns the service time in seconds.
    pub fn access(&mut self, cylinder: usize, pages: usize, kind: AccessKind) -> f64 {
        let cylinder = cylinder.min(self.geometry.cylinders.saturating_sub(1));
        let distance = cylinder.abs_diff(self.head);
        let mut time = self.geometry.access_time(distance, pages.max(1));
        // Sequential writes behind a write-ahead buffer overlap part of the
        // rotational latency (the paper issues asynchronous writes); model
        // this as a half-rotation discount for multi-page writes.
        if kind == AccessKind::Write && pages > 1 && distance == 0 {
            time -= self.geometry.rotational_delay() * 0.5;
        }
        self.head = cylinder;
        self.busy_time += time;
        self.accesses += 1;
        self.pages_moved += pages.max(1) as u64;
        time
    }

    /// Reset the usage counters (head position is kept).
    pub fn reset_counters(&mut self) {
        self.busy_time = 0.0;
        self.accesses = 0;
        self.pages_moved = 0;
    }
}

/// A set of disks with relations horizontally partitioned across them
/// (paper §4.1, \[Ries78, Livn87\]): page `p` of a relation lives on disk
/// `p mod #disks`.
#[derive(Clone, Debug)]
pub struct DiskArray {
    disks: Vec<DiskModel>,
}

impl DiskArray {
    /// Create `n` identical disks (at least one).
    pub fn new(geometry: DiskGeometry, n: usize) -> Self {
        let n = n.max(1);
        DiskArray {
            disks: (0..n).map(|_| DiskModel::new(geometry)).collect(),
        }
    }

    /// Number of disks.
    pub fn len(&self) -> usize {
        self.disks.len()
    }

    /// Always false: a disk array has at least one disk.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Which disk a linear page number maps to.
    pub fn disk_of_page(&self, page: usize) -> usize {
        page % self.disks.len()
    }

    /// Access `pages` pages starting at `cylinder` on the disk holding
    /// `first_page`. Returns the service time.
    pub fn access(
        &mut self,
        first_page: usize,
        cylinder: usize,
        pages: usize,
        kind: AccessKind,
    ) -> f64 {
        let d = self.disk_of_page(first_page);
        self.disks[d].access(cylinder, pages, kind)
    }

    /// Immutable access to an individual disk.
    pub fn disk(&self, idx: usize) -> &DiskModel {
        &self.disks[idx]
    }

    /// Total busy time across all disks.
    pub fn total_busy_time(&self) -> f64 {
        self.disks.iter().map(DiskModel::busy_time).sum()
    }

    /// Total pages moved across all disks.
    pub fn total_pages_moved(&self) -> u64 {
        self.disks.iter().map(DiskModel::pages_moved).sum()
    }

    /// Average time per page moved across all disks.
    pub fn avg_page_time(&self) -> f64 {
        let pages = self.total_pages_moved();
        if pages == 0 {
            0.0
        } else {
            self.total_busy_time() / pages as f64
        }
    }

    /// Reset usage counters on every disk.
    pub fn reset_counters(&mut self) {
        for d in &mut self.disks {
            d.reset_counters();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_moves_head_and_accumulates_time() {
        let mut d = DiskModel::new(DiskGeometry::default());
        let t1 = d.access(700, 1, AccessKind::Read);
        assert!(t1 > 0.0);
        assert_eq!(d.head(), 700);
        let t2 = d.access(700, 1, AccessKind::Read);
        assert!(t2 < t1, "no seek needed the second time");
        assert_eq!(d.accesses(), 2);
        assert_eq!(d.pages_moved(), 2);
        assert!((d.busy_time() - (t1 + t2)).abs() < 1e-12);
    }

    #[test]
    fn alternating_far_accesses_cost_more_than_sequential() {
        let g = DiskGeometry::default();
        let mut alternating = DiskModel::new(g);
        let mut sequential = DiskModel::new(g);
        // Alternate between a relation cylinder (middle) and a temp cylinder
        // (inner), one page at a time — the repl1 pattern.
        for _ in 0..50 {
            alternating.access(750, 1, AccessKind::Read);
            alternating.access(1400, 1, AccessKind::Write);
        }
        // Sequential: read 50 pages then write 50 pages, in blocks of 10.
        for i in 0..5 {
            sequential.access(750 + i, 10, AccessKind::Read);
        }
        for i in 0..5 {
            sequential.access(1400 + i, 10, AccessKind::Write);
        }
        assert!(
            alternating.busy_time() > 3.0 * sequential.busy_time(),
            "alternating {} vs sequential {}",
            alternating.busy_time(),
            sequential.busy_time()
        );
    }

    #[test]
    fn avg_page_time_decreases_with_block_size() {
        let g = DiskGeometry::default();
        let mut prev = f64::INFINITY;
        for block in [1usize, 2, 4, 6, 8, 12] {
            let mut d = DiskModel::new(g);
            // Simulate the repl-N pattern: read `block` relation pages, write
            // `block` temp pages, repeatedly.
            for i in 0..40 {
                d.access(750 + i / 10, block, AccessKind::Read);
                d.access(1300 + i / 10, block, AccessKind::Write);
            }
            let avg = d.avg_page_time();
            assert!(
                avg <= prev + 1e-12,
                "avg page time should not increase with block size"
            );
            prev = avg;
        }
    }

    #[test]
    fn disk_array_partitions_pages_round_robin() {
        let arr = DiskArray::new(DiskGeometry::default(), 3);
        assert_eq!(arr.len(), 3);
        assert_eq!(arr.disk_of_page(0), 0);
        assert_eq!(arr.disk_of_page(1), 1);
        assert_eq!(arr.disk_of_page(2), 2);
        assert_eq!(arr.disk_of_page(3), 0);
    }

    #[test]
    fn disk_array_accumulates_per_disk() {
        let mut arr = DiskArray::new(DiskGeometry::default(), 2);
        arr.access(0, 700, 4, AccessKind::Read);
        arr.access(1, 800, 4, AccessKind::Read);
        arr.access(2, 900, 4, AccessKind::Read);
        assert_eq!(arr.disk(0).accesses(), 2);
        assert_eq!(arr.disk(1).accesses(), 1);
        assert_eq!(arr.total_pages_moved(), 12);
        assert!(arr.avg_page_time() > 0.0);
        arr.reset_counters();
        assert_eq!(arr.total_pages_moved(), 0);
    }

    #[test]
    fn single_disk_array_never_empty() {
        let arr = DiskArray::new(DiskGeometry::default(), 0);
        assert_eq!(arr.len(), 1);
        assert!(!arr.is_empty());
    }
}
