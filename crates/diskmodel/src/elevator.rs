//! The elevator (SCAN) request scheduler used by each simulated disk
//! (paper §4.2: "Each disk has its own queue and disk requests are serviced
//! according to the elevator algorithm").

/// A pending disk request, identified by an opaque tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskRequest<T> {
    /// Target cylinder of the request.
    pub cylinder: usize,
    /// Caller-supplied tag (e.g. a request id).
    pub tag: T,
}

/// Sweep direction of the elevator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// An elevator / SCAN scheduler: requests are served in cylinder order along
/// the current sweep direction; the direction flips when no requests remain
/// ahead of the head.
#[derive(Clone, Debug)]
pub struct ElevatorQueue<T> {
    pending: Vec<DiskRequest<T>>,
    direction: Direction,
}

impl<T> Default for ElevatorQueue<T> {
    fn default() -> Self {
        ElevatorQueue {
            pending: Vec::new(),
            direction: Direction::Up,
        }
    }
}

impl<T> ElevatorQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a request to the queue.
    pub fn push(&mut self, cylinder: usize, tag: T) {
        self.pending.push(DiskRequest { cylinder, tag });
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True if no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pick the next request to serve given the current head position,
    /// removing it from the queue.
    pub fn next_for_head(&mut self, head: usize) -> Option<DiskRequest<T>>
    where
        T: Copy,
    {
        if self.pending.is_empty() {
            return None;
        }
        let pick_up = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cylinder >= head)
            .min_by_key(|(_, r)| r.cylinder)
            .map(|(i, _)| i);
        let pick_down = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, r)| r.cylinder <= head)
            .max_by_key(|(_, r)| r.cylinder)
            .map(|(i, _)| i);
        let idx = match self.direction {
            Direction::Up => pick_up.or_else(|| {
                self.direction = Direction::Down;
                pick_down
            }),
            Direction::Down => pick_down.or_else(|| {
                self.direction = Direction::Up;
                pick_up
            }),
        }?;
        Some(self.pending.swap_remove(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serves_in_scan_order_going_up_then_down() {
        let mut q = ElevatorQueue::new();
        for (i, cyl) in [500usize, 100, 900, 450, 1200].into_iter().enumerate() {
            q.push(cyl, i);
        }
        let mut head = 400usize;
        let mut order = Vec::new();
        while let Some(r) = q.next_for_head(head) {
            head = r.cylinder;
            order.push(r.cylinder);
        }
        // Going up from 400: 450, 500, 900, 1200; then down: 100.
        assert_eq!(order, vec![450, 500, 900, 1200, 100]);
        assert!(q.is_empty());
    }

    #[test]
    fn direction_flips_when_nothing_ahead() {
        let mut q = ElevatorQueue::new();
        q.push(10, "a");
        q.push(5, "b");
        let r = q.next_for_head(100).unwrap();
        assert_eq!(r.cylinder, 10, "flips down and serves the nearest below");
        let r = q.next_for_head(10).unwrap();
        assert_eq!(r.cylinder, 5);
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q: ElevatorQueue<u32> = ElevatorQueue::new();
        assert!(q.next_for_head(0).is_none());
        assert_eq!(q.len(), 0);
    }
}
