//! # masort-diskmodel — the analytic disk substrate
//!
//! Implements the physical resource model of paper Table 3: each disk has
//! `#Cylinders` cylinders of `CylSize` pages; a request costs
//! `Seek + RotateDelay + Transfer`, with `SeekTime(n) = SeekFactor · √n`
//! (\[Bitt88\]). Requests are ordered by an elevator scheduler. Relations are
//! laid out on the middle cylinders and temporary files (sorted runs) on the
//! inner or outer cylinders, which is what makes the alternating
//! read-one-page / write-one-page pattern of classic replacement selection so
//! expensive (paper §2.1, Table 5).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod elevator;
pub mod geometry;
pub mod layout;
pub mod model;

pub use elevator::ElevatorQueue;
pub use geometry::DiskGeometry;
pub use layout::{DiskLayout, Region, TempExtent};
pub use model::{AccessKind, DiskArray, DiskModel};
