//! Disk geometry and timing parameters (paper Table 3).

/// Physical characteristics of one disk.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiskGeometry {
    /// Number of cylinders (paper default 1500).
    pub cylinders: usize,
    /// Pages per cylinder (paper default 90).
    pub pages_per_cylinder: usize,
    /// Tracks per cylinder; pages per track = pages_per_cylinder / tracks.
    pub tracks_per_cylinder: usize,
    /// Seek factor: `SeekTime(n) = seek_factor * sqrt(n)` seconds (\[Bitt88\]).
    pub seek_factor: f64,
    /// Time for one full disk rotation, in seconds (paper default 16.7 ms).
    pub rotate_time: f64,
    /// Page size in bytes (paper default 8 KB).
    pub page_size: usize,
}

impl Default for DiskGeometry {
    fn default() -> Self {
        DiskGeometry {
            cylinders: 1500,
            pages_per_cylinder: 90,
            tracks_per_cylinder: 3,
            seek_factor: 0.000_617,
            rotate_time: 0.0167,
            page_size: 8 * 1024,
        }
    }
}

impl DiskGeometry {
    /// Pages on one track.
    pub fn pages_per_track(&self) -> usize {
        (self.pages_per_cylinder / self.tracks_per_cylinder).max(1)
    }

    /// Total capacity of the disk in pages.
    pub fn capacity_pages(&self) -> usize {
        self.cylinders * self.pages_per_cylinder
    }

    /// Seek time across `distance` cylinders, in seconds. Zero distance means
    /// the head is already on the right cylinder.
    pub fn seek_time(&self, distance: usize) -> f64 {
        if distance == 0 {
            0.0
        } else {
            self.seek_factor * (distance as f64).sqrt()
        }
    }

    /// Average rotational delay (half a rotation).
    pub fn rotational_delay(&self) -> f64 {
        self.rotate_time / 2.0
    }

    /// Time to transfer `pages` consecutive pages once positioned.
    pub fn transfer_time(&self, pages: usize) -> f64 {
        self.rotate_time * pages as f64 / self.pages_per_track() as f64
    }

    /// Complete access time: seek over `distance` cylinders, average
    /// rotational delay, then transfer of `pages` pages.
    pub fn access_time(&self, distance: usize, pages: usize) -> f64 {
        self.seek_time(distance) + self.rotational_delay() + self.transfer_time(pages)
    }

    /// Which cylinder a linear page number falls on.
    pub fn cylinder_of_page(&self, page: usize) -> usize {
        (page / self.pages_per_cylinder).min(self.cylinders.saturating_sub(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_table_3() {
        let g = DiskGeometry::default();
        assert_eq!(g.cylinders, 1500);
        assert_eq!(g.pages_per_cylinder, 90);
        assert_eq!(g.page_size, 8192);
        assert!((g.rotate_time - 0.0167).abs() < 1e-12);
        assert!((g.seek_factor - 0.000617).abs() < 1e-12);
        assert_eq!(g.capacity_pages(), 135_000);
    }

    #[test]
    fn seek_time_follows_square_root_law() {
        let g = DiskGeometry::default();
        assert_eq!(g.seek_time(0), 0.0);
        let t100 = g.seek_time(100);
        let t400 = g.seek_time(400);
        assert!((t400 / t100 - 2.0).abs() < 1e-9, "sqrt law violated");
        assert!((t100 - 0.00617).abs() < 1e-9);
    }

    #[test]
    fn transfer_scales_linearly_with_pages() {
        let g = DiskGeometry::default();
        let one = g.transfer_time(1);
        let six = g.transfer_time(6);
        assert!((six - 6.0 * one).abs() < 1e-12);
        assert!(one > 0.0);
    }

    #[test]
    fn block_access_amortises_seek_and_rotation() {
        let g = DiskGeometry::default();
        // 6 pages in one access must be cheaper than 6 separate accesses.
        let block = g.access_time(200, 6);
        let singles = 6.0 * g.access_time(200, 1);
        assert!(block < singles / 2.0);
    }

    #[test]
    fn cylinder_of_page_clamps_to_disk() {
        let g = DiskGeometry::default();
        assert_eq!(g.cylinder_of_page(0), 0);
        assert_eq!(g.cylinder_of_page(89), 0);
        assert_eq!(g.cylinder_of_page(90), 1);
        assert_eq!(g.cylinder_of_page(10_000_000), g.cylinders - 1);
    }
}
