//! Data placement: relations on the middle cylinders, temporary files (sorted
//! runs) on the inner and outer cylinders (paper §4.1).

use crate::geometry::DiskGeometry;

/// A coarse region of the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Region {
    /// Outer third of the cylinders (temporary files).
    Outer,
    /// Middle third of the cylinders (base relations).
    Middle,
    /// Inner third of the cylinders (temporary files).
    Inner,
}

/// A contiguous extent of cylinders allocated to one temporary run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TempExtent {
    /// First cylinder of the extent.
    pub start_cylinder: usize,
    /// Number of cylinders reserved.
    pub cylinders: usize,
}

impl TempExtent {
    /// Cylinder of the `page`-th page within this extent, given the geometry.
    pub fn cylinder_of(&self, geometry: &DiskGeometry, page: usize) -> usize {
        let offset = page / geometry.pages_per_cylinder;
        self.start_cylinder + offset.min(self.cylinders.saturating_sub(1))
    }
}

/// Placement of relations and temporary files on one disk.
///
/// Relations are assigned contiguous pages starting from the middle cylinders
/// to minimise head movement; temporary extents are bump-allocated from the
/// inner region first, overflowing to the outer region, and recycled when the
/// allocator wraps around (runs are short-lived).
#[derive(Clone, Debug)]
pub struct DiskLayout {
    geometry: DiskGeometry,
    middle_start: usize,
    middle_end: usize,
    /// Next relation page to hand out (linear within the middle region).
    next_relation_page: usize,
    /// Next temporary cylinder to hand out.
    next_temp_cylinder: usize,
    /// Temporary cylinders: inner region [inner_start, cylinders) and outer
    /// region [0, middle_start).
    inner_start: usize,
}

impl DiskLayout {
    /// Create a layout for a disk with the given geometry. The middle third of
    /// the cylinders is reserved for relations.
    pub fn new(geometry: DiskGeometry) -> Self {
        let third = geometry.cylinders / 3;
        let middle_start = third;
        let middle_end = 2 * third;
        DiskLayout {
            geometry,
            middle_start,
            middle_end,
            next_relation_page: 0,
            next_temp_cylinder: 2 * third,
            inner_start: 2 * third,
        }
    }

    /// The geometry this layout is for.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geometry
    }

    /// Which region a cylinder belongs to.
    pub fn region_of(&self, cylinder: usize) -> Region {
        if cylinder < self.middle_start {
            Region::Outer
        } else if cylinder < self.middle_end {
            Region::Middle
        } else {
            Region::Inner
        }
    }

    /// Allocate `pages` contiguous pages for a relation and return the linear
    /// page number of the first page (relative to the middle region).
    pub fn allocate_relation(&mut self, pages: usize) -> usize {
        let start = self.next_relation_page;
        self.next_relation_page += pages;
        start
    }

    /// Cylinder holding the `page`-th page of the relation area.
    pub fn relation_cylinder(&self, page: usize) -> usize {
        let cyl = self.middle_start + page / self.geometry.pages_per_cylinder;
        cyl.min(self.middle_end.saturating_sub(1).max(self.middle_start))
    }

    /// Allocate a temporary extent able to hold `pages` pages.
    ///
    /// Extents are carved from the inner cylinders and wrap around (reusing
    /// space) when the region is exhausted — temporary runs are deleted as
    /// soon as they have been merged, so reuse is safe in the simulation.
    pub fn allocate_temp(&mut self, pages: usize) -> TempExtent {
        let need_cyls = pages.div_ceil(self.geometry.pages_per_cylinder).max(1);
        if self.next_temp_cylinder + need_cyls > self.geometry.cylinders {
            // Wrap around to the start of the inner region.
            self.next_temp_cylinder = self.inner_start;
        }
        let start = self.next_temp_cylinder;
        self.next_temp_cylinder += need_cyls;
        TempExtent {
            start_cylinder: start,
            cylinders: need_cyls,
        }
    }

    /// Reset the temporary allocator (e.g. between simulated sorts).
    pub fn reset_temp(&mut self) {
        self.next_temp_cylinder = self.inner_start;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_the_disk() {
        let layout = DiskLayout::new(DiskGeometry::default());
        assert_eq!(layout.region_of(0), Region::Outer);
        assert_eq!(layout.region_of(499), Region::Outer);
        assert_eq!(layout.region_of(500), Region::Middle);
        assert_eq!(layout.region_of(999), Region::Middle);
        assert_eq!(layout.region_of(1000), Region::Inner);
        assert_eq!(layout.region_of(1499), Region::Inner);
    }

    #[test]
    fn relations_live_on_middle_cylinders() {
        let mut layout = DiskLayout::new(DiskGeometry::default());
        let start = layout.allocate_relation(2560);
        assert_eq!(start, 0);
        let first = layout.relation_cylinder(start);
        let last = layout.relation_cylinder(start + 2559);
        assert_eq!(layout.region_of(first), Region::Middle);
        assert_eq!(layout.region_of(last), Region::Middle);
        // A second relation goes right after the first.
        let second = layout.allocate_relation(100);
        assert_eq!(second, 2560);
    }

    #[test]
    fn temp_extents_live_outside_the_middle_and_wrap() {
        let mut layout = DiskLayout::new(DiskGeometry::default());
        let e1 = layout.allocate_temp(90 * 3);
        assert_eq!(layout.region_of(e1.start_cylinder), Region::Inner);
        assert_eq!(e1.cylinders, 3);
        let e2 = layout.allocate_temp(10);
        assert_eq!(e2.start_cylinder, e1.start_cylinder + 3);
        // Exhaust the inner region and confirm wrap-around.
        let mut last = e2;
        for _ in 0..300 {
            last = layout.allocate_temp(90 * 2);
        }
        assert!(last.start_cylinder >= 1000);
        assert!(last.start_cylinder < 1500);
    }

    #[test]
    fn temp_extent_page_to_cylinder() {
        let g = DiskGeometry::default();
        let e = TempExtent {
            start_cylinder: 1200,
            cylinders: 4,
        };
        assert_eq!(e.cylinder_of(&g, 0), 1200);
        assert_eq!(e.cylinder_of(&g, 89), 1200);
        assert_eq!(e.cylinder_of(&g, 90), 1201);
        assert_eq!(e.cylinder_of(&g, 90 * 10), 1203, "clamped to the extent");
    }

    #[test]
    fn reset_temp_reuses_space() {
        let mut layout = DiskLayout::new(DiskGeometry::default());
        let a = layout.allocate_temp(90);
        layout.reset_temp();
        let b = layout.allocate_temp(90);
        assert_eq!(a.start_cylinder, b.start_cylinder);
    }
}
