//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses: enough to compile and *run* the microbenchmarks (`cargo bench`),
//! reporting wall-clock time per iteration, without the statistical machinery
//! or the plotting of the real crate.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A benchmark id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// A benchmark id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Drives the timed iterations of one benchmark.
pub struct Bencher {
    /// Mean wall-clock time of one iteration, filled in by [`iter`](Self::iter).
    elapsed_per_iter: Duration,
}

impl Bencher {
    /// Time `routine`, running it repeatedly for a short, fixed budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // One warm-up iteration, then measure for ~300 ms or 10 iterations,
        // whichever comes last.
        std::hint::black_box(routine());
        let budget = Duration::from_millis(300);
        let started = Instant::now();
        let mut iters = 0u32;
        while iters < 10 || started.elapsed() < budget {
            std::hint::black_box(routine());
            iters += 1;
            if iters >= 1_000_000 {
                break;
            }
        }
        self.elapsed_per_iter = started.elapsed() / iters;
    }
}

fn run_one(label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed_per_iter: Duration::ZERO,
    };
    f(&mut b);
    println!("bench {label:<40} {:>12.3?}/iter", b.elapsed_per_iter);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmark `f` with the given id and input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| f(b, input));
    }

    /// Benchmark `f` under the given name.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, &mut f);
    }

    /// Finish the group (no-op in the stand-in).
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmark a single function.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// Prevent the optimizer from eliding a value (re-export-style helper).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)*) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)*) => {
        fn main() {
            $( $group(); )+
        }
    };
}
