//! Offline stand-in for the subset of the `rand` 0.8 API this workspace uses.
//!
//! The build environment has no access to a crates registry, so this tiny,
//! dependency-free implementation provides the pieces the workspace needs:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range` and `gen_bool`. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic per seed, which is all the tests and the
//! simulation harness rely on (they never depend on the exact byte stream of
//! upstream `StdRng`).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG's raw 64-bit output.
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = Standard::sample(rng); // [0, 1)
        let v = self.start + u * (self.end - self.start);
        // Guard against rounding up to the (excluded) end point.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 53-bit fraction in [0, 1].
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        start + u * (end - start)
    }
}

/// A source of randomness plus the convenience sampling methods of `rand 0.8`.
pub trait Rng {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniformly sample a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniformly sample from `range`. Panics if the range is empty.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        let u: f64 = Standard::sample(self);
        u < p
    }
}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A deterministic xoshiro256++ generator (stand-in for `rand`'s `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let a = rng.gen_range(3u64..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&b));
            let c = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&c));
            let d = rng.gen_range(0.0f64..=0.125);
            assert!((0.0..=0.125).contains(&d));
            let e = rng.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(e > 0.0 && e < 1.0);
        }
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5u64..5);
    }
}
