//! Property-style tests over the core invariants, driven by a seeded
//! generator (the offline environment has no `proptest`, so cases are
//! enumerated deterministically — every failure reproduces from its seed):
//!
//! * every algorithm combination produces a sorted permutation of its input,
//!   for random inputs and scripted budget fluctuations, ascending and
//!   descending;
//! * `SortedStream` yields exactly the same sequence as `collect_run` for
//!   random inputs across all algorithm combinations, including descending
//!   order;
//! * replacement-selection runs are individually sorted and cover the input;
//! * merge planning respects its fan-in bounds and both policies always use
//!   the same number of steps;
//! * the sort-merge join finds exactly the matches a nested-loop join finds.

use masort_core::merge::plan::{preliminary_fan_in, StaticPlanSummary};
use masort_core::verify;
use memory_adaptive_sort::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scripted environment that changes the budget after every N CPU charges,
/// cycling through a list of targets — a deterministic stand-in for a DBMS
/// taking and returning memory at arbitrary points.
struct ScriptedBudgetEnv {
    clock: f64,
    charges: u64,
    period: u64,
    targets: Vec<usize>,
    next: usize,
}

impl ScriptedBudgetEnv {
    fn new(period: u64, targets: Vec<usize>) -> Self {
        ScriptedBudgetEnv {
            clock: 0.0,
            charges: 0,
            period: period.max(1),
            targets,
            next: 0,
        }
    }
}

impl masort_core::SortEnv for ScriptedBudgetEnv {
    fn now(&self) -> f64 {
        self.clock
    }
    fn charge_cpu(&mut self, _op: masort_core::CpuOp, count: u64) {
        self.charges += count;
        self.clock += count as f64 * 1e-6;
    }
    fn poll(&mut self, budget: &MemoryBudget) {
        if !self.targets.is_empty() && self.charges / self.period >= self.next as u64 {
            let t = self.targets[self.next % self.targets.len()];
            budget.set_target(t, self.clock);
            self.next += 1;
        }
    }
    fn wait_for_pages(&mut self, budget: &MemoryBudget, pages: usize) -> bool {
        // Force the budget up (the "DBMS" returns memory) so suspension can
        // always resume.
        budget.set_target(pages, self.clock);
        true
    }
}

fn arbitrary_algorithm(rng: &mut StdRng) -> AlgorithmSpec {
    let formation = match rng.gen_range(0usize..3) {
        0 => RunFormation::Quicksort,
        1 => RunFormation::repl(1),
        _ => RunFormation::repl(4),
    };
    let policy = if rng.gen_range(0usize..2) == 0 {
        MergePolicy::Naive
    } else {
        MergePolicy::Optimized
    };
    let adaptation = match rng.gen_range(0usize..3) {
        0 => MergeAdaptation::Suspension,
        1 => MergeAdaptation::Paging,
        _ => MergeAdaptation::DynamicSplitting,
    };
    AlgorithmSpec::new(formation, policy, adaptation)
}

fn arbitrary_tuples(rng: &mut StdRng, max: usize, key_bits: u32) -> Vec<Tuple> {
    let n = rng.gen_range(0usize..max.max(1));
    let mask = if key_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << key_bits) - 1
    };
    (0..n)
        .map(|_| Tuple::synthetic(rng.gen::<u64>() & mask, 64))
        .collect()
}

fn small_cfg(mem: usize, spec: AlgorithmSpec) -> SortConfig {
    SortConfig::default()
        .with_page_size(512)
        .with_tuple_size(64)
        .with_memory_pages(mem)
        .with_algorithm(spec)
}

#[test]
fn algorithm_spec_display_fromstr_round_trips_for_all_combinations() {
    // Satellite property: `AlgorithmSpec` survives a Display -> FromStr round
    // trip for every `X1,X2,X3` combination — all three in-memory methods
    // (with randomized `replN` block sizes), both merge policies, all three
    // adaptation strategies — plus the adaptive-replacement extension.
    let mut cases = 0usize;
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(0xA160 + seed);
        let block = rng.gen_range(1usize..512);
        for spec in AlgorithmSpec::all(block) {
            let text = spec.to_string();
            let parsed: AlgorithmSpec = text
                .parse()
                .unwrap_or_else(|e| panic!("`{text}` failed to parse: {e}"));
            assert_eq!(parsed, spec, "round trip changed `{text}`");
            assert_eq!(parsed.to_string(), text, "second Display diverged");
            cases += 1;
        }
    }
    // `adapt` (default bounds) round-trips with every policy x adaptation.
    for policy in [MergePolicy::Naive, MergePolicy::Optimized] {
        for adaptation in [
            MergeAdaptation::Suspension,
            MergeAdaptation::Paging,
            MergeAdaptation::DynamicSplitting,
        ] {
            let spec = AlgorithmSpec::new(RunFormation::adaptive(), policy, adaptation);
            let parsed: AlgorithmSpec = spec.to_string().parse().unwrap();
            assert_eq!(parsed, spec);
            cases += 1;
        }
    }
    assert_eq!(cases, 32 * 18 + 6);

    // Fuzz the parser with mangled variants: it must reject or round-trip,
    // never panic or accept something that re-displays differently.
    let mut rng = StdRng::seed_from_u64(0xF022);
    let fragments = [
        "quick",
        "repl",
        "repl1",
        "repl0",
        "adapt",
        "naive",
        "opt",
        "susp",
        "page",
        "split",
        "",
        " ",
        "quack",
        "replX",
        "9999999999999999999999",
    ];
    for _ in 0..500 {
        let n = rng.gen_range(0usize..5);
        let s: Vec<&str> = (0..n)
            .map(|_| fragments[rng.gen_range(0usize..fragments.len())])
            .collect();
        let text = s.join(",");
        if let Ok(spec) = text.parse::<AlgorithmSpec>() {
            let canonical = spec.to_string();
            let reparsed: AlgorithmSpec = canonical.parse().unwrap();
            assert_eq!(reparsed, spec, "`{text}` -> `{canonical}` not stable");
        }
    }
}

#[test]
fn sort_is_a_sorted_permutation_under_fluctuation() {
    for case in 0..24u64 {
        let mut rng = StdRng::seed_from_u64(0x50F7 + case);
        let input = arbitrary_tuples(&mut rng, 2_000, 32);
        let spec = arbitrary_algorithm(&mut rng);
        let mem = rng.gen_range(1usize..12);
        let period = rng.gen_range(50u64..2_000);
        let targets: Vec<usize> = (0..rng.gen_range(1usize..6))
            .map(|_| rng.gen_range(0usize..16))
            .collect();
        let order = if rng.gen_range(0usize..2) == 0 {
            SortOrder::ascending()
        } else {
            SortOrder::descending()
        };

        let cfg = small_cfg(mem, spec).with_order(order.clone());
        let budget = MemoryBudget::new(mem);
        let mut env = ScriptedBudgetEnv::new(period, targets);
        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let outcome = ExternalSorter::new(cfg)
            .sort(&mut source, &mut store, &mut env, &budget)
            .unwrap_or_else(|e| panic!("case {case} ({spec}) failed: {e}"));
        let sorted = verify::collect_run(&mut store, outcome.output_run).unwrap();
        assert!(
            verify::is_sorted_by(&sorted, &order),
            "case {case} ({spec}, {order:?}) produced unsorted output"
        );
        assert!(
            verify::is_key_permutation(&input, &sorted),
            "case {case} ({spec}) lost or duplicated tuples"
        );
    }
}

#[test]
fn sorted_stream_matches_collect_run_for_all_algorithms() {
    // The satellite property: for random inputs, streaming the output run
    // yields exactly the same sequence as materialising it with
    // `collect_run`, for every algorithm combination — ascending *and*
    // descending.
    let mut case = 0u64;
    for spec in AlgorithmSpec::all(4) {
        for order in [SortOrder::ascending(), SortOrder::descending()] {
            case += 1;
            let mut rng = StdRng::seed_from_u64(0x57AE + case);
            let input = arbitrary_tuples(&mut rng, 3_000, 64);
            let mem = rng.gen_range(3usize..10);
            let cfg = small_cfg(mem, spec).with_order(order.clone());

            let budget = MemoryBudget::new(mem);
            let mut env = RealEnv::new();
            let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
            let mut store = MemStore::new();
            let outcome = ExternalSorter::new(cfg)
                .sort(&mut source, &mut store, &mut env, &budget)
                .unwrap();

            // Materialise first (collect_run does not consume the run) ...
            let collected = verify::collect_run(&mut store, outcome.output_run).unwrap();
            // ... then stream the very same run and compare sequences.
            let streamed: Vec<Tuple> = outcome
                .into_stream(store)
                .collect::<Result<_, _>>()
                .unwrap();
            assert_eq!(
                streamed.len(),
                collected.len(),
                "{spec} {order:?}: stream length diverged"
            );
            assert_eq!(
                streamed, collected,
                "{spec} {order:?}: stream sequence diverged from collect_run"
            );
            assert!(verify::is_sorted_by(&streamed, &order));
            assert!(verify::is_key_permutation(&input, &streamed));
        }
    }
    assert_eq!(case, 36, "18 algorithm combinations x 2 directions");
}

#[test]
fn split_phase_runs_are_sorted_and_cover_input() {
    for case in 0..16u64 {
        let mut rng = StdRng::seed_from_u64(0x5917 + case);
        let input = arbitrary_tuples(&mut rng, 3_000, 64);
        let block = rng.gen_range(1usize..8);
        let mem = rng.gen_range(2usize..10);
        let cfg = small_cfg(
            mem,
            AlgorithmSpec::new(
                RunFormation::repl(block),
                MergePolicy::Optimized,
                MergeAdaptation::DynamicSplitting,
            ),
        );
        let budget = MemoryBudget::new(mem);
        let mut env = masort_core::env::CountingEnv::new();
        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let stats =
            masort_core::run_formation::form_runs(&cfg, &budget, &mut source, &mut store, &mut env)
                .unwrap();
        let mut all = Vec::new();
        for run in &stats.runs {
            let tuples = verify::collect_run(&mut store, run.id).unwrap();
            assert!(
                verify::is_sorted(&tuples),
                "case {case}: run {} not sorted",
                run.id
            );
            assert_eq!(tuples.len(), run.tuples);
            all.extend(tuples);
        }
        assert!(verify::is_key_permutation(&input, &all), "case {case}");
    }
}

#[test]
fn merge_planning_invariants() {
    for case in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x914A + case);
        let n = rng.gen_range(0usize..400);
        let m = rng.gen_range(3usize..64);
        let runs: Vec<usize> = (0..n).map(|i| 1 + (i * 31 % 17)).collect();
        let naive = StaticPlanSummary::plan(&runs, m, MergePolicy::Naive).unwrap();
        let opt = StaticPlanSummary::plan(&runs, m, MergePolicy::Optimized).unwrap();
        assert_eq!(naive.step_count(), opt.step_count(), "n={n} m={m}");
        assert!(
            opt.preliminary_pages() <= naive.preliminary_pages(),
            "n={n} m={m}"
        );
        for policy in [MergePolicy::Naive, MergePolicy::Optimized] {
            if let Some(f) = preliminary_fan_in(n, m, policy).unwrap() {
                assert!(f >= 2, "n={n} m={m}");
                assert!(f < m, "n={n} m={m}");
                assert!(f <= n, "n={n} m={m}");
            } else {
                assert!(n <= (m - 1).max(2), "n={n} m={m}");
            }
        }
    }
}

#[test]
fn join_matches_nested_loop() {
    for case in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(0x901A + case);
        let left: Vec<Tuple> = (0..rng.gen_range(0usize..800))
            .map(|_| Tuple::synthetic(rng.gen_range(0u64..200), 64))
            .collect();
        let right: Vec<Tuple> = (0..rng.gen_range(0usize..800))
            .map(|_| Tuple::synthetic(rng.gen_range(0u64..200), 64))
            .collect();
        let mem = rng.gen_range(3usize..10);
        let expected = verify::nested_loop_match_count(&left, &right);
        let cfg = small_cfg(mem, AlgorithmSpec::recommended());
        let outcome = SortMergeJoin::new(cfg)
            .join_vecs_count(left, right)
            .unwrap();
        assert_eq!(outcome.matches, expected, "case {case}");
    }
}

#[test]
fn descending_join_matches_nested_loop() {
    // The join machinery is order-agnostic: matching on equal ranks under a
    // descending order finds exactly the same pairs.
    for case in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(0xDE5C + case);
        let left: Vec<Tuple> = (0..rng.gen_range(1usize..500))
            .map(|_| Tuple::synthetic(rng.gen_range(0u64..100), 64))
            .collect();
        let right: Vec<Tuple> = (0..rng.gen_range(1usize..500))
            .map(|_| Tuple::synthetic(rng.gen_range(0u64..100), 64))
            .collect();
        let expected = verify::nested_loop_match_count(&left, &right);
        let cfg = small_cfg(5, AlgorithmSpec::recommended()).with_order(SortOrder::descending());
        let outcome = SortMergeJoin::new(cfg)
            .join_vecs_count(left, right)
            .unwrap();
        assert_eq!(outcome.matches, expected, "case {case}");
    }
}
