//! Property-based tests (proptest) over the core invariants:
//!
//! * every algorithm combination produces a sorted permutation of its input,
//!   for arbitrary inputs and arbitrary scripted budget fluctuations;
//! * replacement-selection runs are individually sorted and cover the input;
//! * merge planning respects its fan-in bounds and both policies always use
//!   the same number of steps;
//! * the sort-merge join finds exactly the matches a nested-loop join finds.

use masort_core::merge::plan::{preliminary_fan_in, StaticPlanSummary};
use memory_adaptive_sort::prelude::*;
use proptest::prelude::*;

/// A scripted environment that changes the budget after every N CPU charges,
/// cycling through a list of targets — a deterministic stand-in for a DBMS
/// taking and returning memory at arbitrary points.
struct ScriptedBudgetEnv {
    clock: f64,
    charges: u64,
    period: u64,
    targets: Vec<usize>,
    next: usize,
}

impl ScriptedBudgetEnv {
    fn new(period: u64, targets: Vec<usize>) -> Self {
        ScriptedBudgetEnv {
            clock: 0.0,
            charges: 0,
            period: period.max(1),
            targets,
            next: 0,
        }
    }
}

impl masort_core::SortEnv for ScriptedBudgetEnv {
    fn now(&self) -> f64 {
        self.clock
    }
    fn charge_cpu(&mut self, _op: masort_core::CpuOp, count: u64) {
        self.charges += count;
        self.clock += count as f64 * 1e-6;
    }
    fn poll(&mut self, budget: &MemoryBudget) {
        if !self.targets.is_empty() && self.charges / self.period >= self.next as u64 {
            let t = self.targets[self.next % self.targets.len()];
            budget.set_target(t, self.clock);
            self.next += 1;
        }
    }
    fn wait_for_pages(&mut self, budget: &MemoryBudget, pages: usize) -> bool {
        // Force the budget up (the "DBMS" returns memory) so suspension can
        // always resume.
        budget.set_target(pages, self.clock);
        true
    }
}

fn algorithm_strategy() -> impl Strategy<Value = AlgorithmSpec> {
    (0usize..3, 0usize..2, 0usize..3).prop_map(|(f, p, a)| {
        let formation = match f {
            0 => RunFormation::Quicksort,
            1 => RunFormation::repl(1),
            _ => RunFormation::repl(4),
        };
        let policy = if p == 0 {
            MergePolicy::Naive
        } else {
            MergePolicy::Optimized
        };
        let adaptation = match a {
            0 => MergeAdaptation::Suspension,
            1 => MergeAdaptation::Paging,
            _ => MergeAdaptation::DynamicSplitting,
        };
        AlgorithmSpec::new(formation, policy, adaptation)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sort_is_a_sorted_permutation_under_fluctuation(
        keys in prop::collection::vec(any::<u32>(), 0..2_000),
        spec in algorithm_strategy(),
        mem in 1usize..12,
        period in 50u64..2_000,
        targets in prop::collection::vec(0usize..16, 1..6),
    ) {
        let input: Vec<Tuple> = keys.iter().map(|&k| Tuple::synthetic(k as u64, 64)).collect();
        let cfg = SortConfig::default()
            .with_page_size(512)
            .with_tuple_size(64)
            .with_memory_pages(mem)
            .with_algorithm(spec);
        let budget = MemoryBudget::new(mem);
        let mut env = ScriptedBudgetEnv::new(period, targets);
        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let outcome = ExternalSorter::new(cfg).sort(&mut source, &mut store, &mut env, &budget);
        let sorted = masort_core::verify::collect_run(&mut store, outcome.output_run);
        prop_assert!(masort_core::verify::is_sorted(&sorted));
        prop_assert!(masort_core::verify::is_key_permutation(&input, &sorted));
    }

    #[test]
    fn split_phase_runs_are_sorted_and_cover_input(
        keys in prop::collection::vec(any::<u64>(), 0..3_000),
        block in 1usize..8,
        mem in 2usize..10,
    ) {
        let input: Vec<Tuple> = keys.iter().map(|&k| Tuple::synthetic(k, 64)).collect();
        let cfg = SortConfig::default()
            .with_page_size(512)
            .with_tuple_size(64)
            .with_memory_pages(mem)
            .with_algorithm(AlgorithmSpec::new(
                RunFormation::repl(block),
                MergePolicy::Optimized,
                MergeAdaptation::DynamicSplitting,
            ));
        let budget = MemoryBudget::new(mem);
        let mut env = masort_core::env::CountingEnv::new();
        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let stats = masort_core::run_formation::form_runs(&cfg, &budget, &mut source, &mut store, &mut env);
        let mut all = Vec::new();
        for run in &stats.runs {
            let tuples = masort_core::verify::collect_run(&mut store, run.id);
            prop_assert!(masort_core::verify::is_sorted(&tuples), "run {} not sorted", run.id);
            prop_assert_eq!(tuples.len(), run.tuples);
            all.extend(tuples);
        }
        prop_assert!(masort_core::verify::is_key_permutation(&input, &all));
    }

    #[test]
    fn merge_planning_invariants(
        n in 0usize..400,
        m in 3usize..64,
    ) {
        let runs: Vec<usize> = (0..n).map(|i| 1 + (i * 31 % 17)).collect();
        let naive = StaticPlanSummary::plan(&runs, m, MergePolicy::Naive);
        let opt = StaticPlanSummary::plan(&runs, m, MergePolicy::Optimized);
        prop_assert_eq!(naive.step_count(), opt.step_count());
        prop_assert!(opt.preliminary_pages() <= naive.preliminary_pages());
        for policy in [MergePolicy::Naive, MergePolicy::Optimized] {
            if let Some(f) = preliminary_fan_in(n, m, policy) {
                prop_assert!(f >= 2);
                prop_assert!(f < m);
                prop_assert!(f <= n);
            } else {
                prop_assert!(n <= (m - 1).max(2));
            }
        }
    }

    #[test]
    fn join_matches_nested_loop(
        left_keys in prop::collection::vec(0u64..200, 0..800),
        right_keys in prop::collection::vec(0u64..200, 0..800),
        mem in 3usize..10,
    ) {
        let left: Vec<Tuple> = left_keys.iter().map(|&k| Tuple::synthetic(k, 64)).collect();
        let right: Vec<Tuple> = right_keys.iter().map(|&k| Tuple::synthetic(k, 64)).collect();
        let expected = masort_core::verify::nested_loop_match_count(&left, &right);
        let cfg = SortConfig::default()
            .with_page_size(512)
            .with_tuple_size(64)
            .with_memory_pages(mem)
            .with_algorithm(AlgorithmSpec::recommended());
        let outcome = SortMergeJoin::new(cfg).join_vecs_count(left, right);
        prop_assert_eq!(outcome.matches, expected);
    }
}
