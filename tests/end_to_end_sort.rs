//! Workspace-level integration tests: every algorithm combination sorts
//! correctly end-to-end, including while its memory budget fluctuates, in
//! ascending and descending order, materialised and streamed, against both
//! the in-memory and the file-backed store.

use memory_adaptive_sort::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tuple::synthetic(rng.gen::<u64>() >> 8, 64))
        .collect()
}

fn small_cfg(mem: usize, spec: AlgorithmSpec) -> SortConfig {
    SortConfig::default()
        .with_page_size(512)
        .with_tuple_size(64)
        .with_memory_pages(mem)
        .with_algorithm(spec)
}

#[test]
fn all_18_algorithms_sort_correctly() {
    let input = random_tuples(4_000, 1);
    for spec in AlgorithmSpec::all(6) {
        let sorted = SortJob::builder()
            .config(small_cfg(7, spec))
            .tuples(input.clone())
            .build()
            .unwrap()
            .run()
            .unwrap()
            .into_sorted_vec()
            .unwrap();
        masort_core::verify::assert_sorted_permutation(&input, &sorted);
    }
}

#[test]
fn concurrent_budget_fluctuation_preserves_correctness() {
    let input = random_tuples(30_000, 2);
    for alg in ["repl6,opt,split", "quick,opt,page", "repl1,naive,susp"] {
        let spec: AlgorithmSpec = alg.parse().unwrap();
        let cfg = small_cfg(32, spec);
        let budget = MemoryBudget::new(cfg.memory_pages);
        let b = budget.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let fluctuator = std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                let target = match i % 4 {
                    0 => 3,
                    1 => 40,
                    2 => 10,
                    _ => 24,
                };
                b.set_target(target, i as f64);
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        });

        let sorted = SortJob::builder()
            .config(cfg)
            .tuples(input.clone())
            .budget(budget)
            .build()
            .unwrap()
            .run()
            .unwrap()
            .into_sorted_vec()
            .unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        fluctuator.join().unwrap();
        masort_core::verify::assert_sorted_permutation(&input, &sorted);
    }
}

#[test]
fn file_store_backed_sort_survives_fluctuation() {
    let input = random_tuples(8_000, 3);
    let cfg = small_cfg(10, AlgorithmSpec::recommended());
    let budget = MemoryBudget::new(cfg.memory_pages);
    let b = budget.clone();
    let handle = std::thread::spawn(move || {
        for i in 0..200u64 {
            b.set_target(if i % 2 == 0 { 4 } else { 16 }, i as f64);
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    });
    let sorted = SortJob::builder()
        .config(cfg)
        .tuples(input.clone())
        .store(FileStore::in_temp_dir().unwrap())
        .budget(budget)
        .build()
        .unwrap()
        .run()
        .unwrap()
        .into_sorted_vec()
        .unwrap();
    handle.join().unwrap();
    masort_core::verify::assert_sorted_permutation(&input, &sorted);
}

#[test]
fn tiny_memory_floor_still_sorts() {
    // Even a budget of zero pages (the DBMS took everything) must not wedge
    // the sort: it keeps a minimal working set and completes. This goes
    // through the low-level engine because the builder rejects a zero-page
    // budget up front.
    let input = random_tuples(2_000, 4);
    for alg in ["repl6,opt,split", "quick,opt,split"] {
        let cfg = small_cfg(1, alg.parse().unwrap());
        let budget = MemoryBudget::new(0);
        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let mut env = RealEnv::new();
        let outcome = ExternalSorter::new(cfg)
            .sort(&mut source, &mut store, &mut env, &budget)
            .unwrap();
        let sorted = masort_core::verify::collect_run(&mut store, outcome.output_run).unwrap();
        masort_core::verify::assert_sorted_permutation(&input, &sorted);
    }
}

#[test]
fn outcome_statistics_are_consistent() {
    let input = random_tuples(6_000, 5);
    let cfg = small_cfg(6, AlgorithmSpec::recommended());
    let completion = SortJob::builder()
        .config(cfg)
        .tuples(input.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let outcome = completion.outcome.clone();
    let sorted = completion.into_sorted_vec().unwrap();
    assert_eq!(sorted.len(), input.len());
    assert_eq!(outcome.split.total_tuples(), input.len());
    assert!(outcome.merge.steps_executed >= 1);
    assert!(outcome.split.pages_written >= outcome.runs_formed());
    assert!(outcome.response_time >= outcome.split.duration());
}

// ---------------------------------------------------------------------------
// Descending-order sorts, end to end, with both stores.
// ---------------------------------------------------------------------------

#[test]
fn descending_sort_end_to_end_mem_store() {
    let input = random_tuples(5_000, 6);
    let order = SortOrder::descending();
    for spec in [
        AlgorithmSpec::recommended(),
        "quick,naive,susp".parse().unwrap(),
        "repl1,opt,page".parse().unwrap(),
    ] {
        let sorted = SortJob::builder()
            .config(small_cfg(6, spec))
            .descending()
            .tuples(input.clone())
            .build()
            .unwrap()
            .run()
            .unwrap()
            .into_sorted_vec()
            .unwrap();
        masort_core::verify::assert_sorted_permutation_by(&input, &sorted, &order);
        assert!(sorted.first().unwrap().key >= sorted.last().unwrap().key);
    }
}

#[test]
fn descending_sort_end_to_end_file_store() {
    let input = random_tuples(4_000, 7);
    let order = SortOrder::descending();
    let sorted = SortJob::builder()
        .config(small_cfg(5, AlgorithmSpec::recommended()))
        .descending()
        .tuples(input.clone())
        .store(FileStore::in_temp_dir().unwrap())
        .build()
        .unwrap()
        .run()
        .unwrap()
        .into_sorted_vec()
        .unwrap();
    masort_core::verify::assert_sorted_permutation_by(&input, &sorted, &order);
}

// ---------------------------------------------------------------------------
// Streamed (non-materialised) sorts, end to end, with both stores.
// ---------------------------------------------------------------------------

#[test]
fn streamed_sort_end_to_end_mem_store() {
    let input = random_tuples(6_000, 8);
    let completion = SortJob::builder()
        .config(small_cfg(6, AlgorithmSpec::recommended()))
        .tuples(input.clone())
        .build()
        .unwrap()
        .run()
        .unwrap();
    let mut previous = 0u64;
    let mut count = 0usize;
    for tuple in completion.into_stream() {
        let tuple = tuple.unwrap();
        assert!(tuple.key >= previous, "stream out of order");
        previous = tuple.key;
        count += 1;
    }
    assert_eq!(count, input.len());
}

#[test]
fn streamed_sort_end_to_end_file_store() {
    let input = random_tuples(5_000, 9);
    let store = FileStore::in_temp_dir().unwrap();
    let dir = store.dir().to_path_buf();
    let completion = SortJob::builder()
        .config(small_cfg(5, AlgorithmSpec::recommended()))
        .tuples(input.clone())
        .store(store)
        .build()
        .unwrap()
        .run()
        .unwrap();
    let mut previous = 0u64;
    let mut count = 0usize;
    let mut stream = completion.into_stream();
    for tuple in stream.by_ref() {
        let tuple = tuple.unwrap();
        assert!(tuple.key >= previous, "stream out of order");
        previous = tuple.key;
        count += 1;
    }
    assert_eq!(count, input.len());
    // Draining the stream reclaimed the output run's file. Check while the
    // store (and therefore the directory) is still alive — dropping the
    // FileStore would delete everything regardless.
    let remaining = std::fs::read_dir(&dir).unwrap().count();
    assert_eq!(remaining, 0, "run files should be deleted after streaming");
    drop(stream.into_store());
}

// ---------------------------------------------------------------------------
// Error paths surface as SortError, not panics.
// ---------------------------------------------------------------------------

#[test]
fn invalid_configs_fail_at_build() {
    let mut zero_mem = small_cfg(4, AlgorithmSpec::recommended());
    zero_mem.memory_pages = 0;
    assert!(matches!(
        SortJob::builder().config(zero_mem).build(),
        Err(SortError::InvalidConfig(_))
    ));

    let mut big_tuple = small_cfg(4, AlgorithmSpec::recommended());
    big_tuple.tuple_size = big_tuple.page_size * 2;
    assert!(matches!(
        SortJob::builder().config(big_tuple).build(),
        Err(SortError::InvalidConfig(_))
    ));
}

#[test]
fn sort_into_removed_directory_reports_io_error() {
    let dir = std::env::temp_dir().join(format!(
        "masort-e2e-gone-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let store = FileStore::new(&dir).unwrap();
    // Remove the directory behind the store's back: creating the first run
    // file must surface an I/O error through the whole sort pipeline.
    std::fs::remove_dir_all(&dir).unwrap();
    let err = SortJob::builder()
        .config(small_cfg(4, AlgorithmSpec::recommended()))
        .tuples(random_tuples(2_000, 10))
        .store(store)
        .build()
        .unwrap()
        .run()
        .unwrap_err();
    assert!(matches!(err, SortError::Io(_)), "got {err:?}");
}
