//! Workspace-level integration tests: every algorithm combination sorts
//! correctly end-to-end, including while its memory budget fluctuates.

use memory_adaptive_sort::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tuple::synthetic(rng.gen::<u64>() >> 8, 64))
        .collect()
}

fn small_cfg(mem: usize, spec: AlgorithmSpec) -> SortConfig {
    SortConfig::default()
        .with_page_size(512)
        .with_tuple_size(64)
        .with_memory_pages(mem)
        .with_algorithm(spec)
}

#[test]
fn all_18_algorithms_sort_correctly() {
    let input = random_tuples(4_000, 1);
    for spec in AlgorithmSpec::all(6) {
        let sorter = ExternalSorter::new(small_cfg(7, spec));
        let sorted = sorter.sort_vec(input.clone());
        masort_core::verify::assert_sorted_permutation(&input, &sorted);
    }
}

#[test]
fn concurrent_budget_fluctuation_preserves_correctness() {
    let input = random_tuples(30_000, 2);
    for alg in ["repl6,opt,split", "quick,opt,page", "repl1,naive,susp"] {
        let spec: AlgorithmSpec = alg.parse().unwrap();
        let cfg = small_cfg(32, spec);
        let budget = MemoryBudget::new(cfg.memory_pages);
        let b = budget.clone();
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stop2 = stop.clone();
        let fluctuator = std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                i += 1;
                let target = match i % 4 {
                    0 => 3,
                    1 => 40,
                    2 => 10,
                    _ => 24,
                };
                b.set_target(target, i as f64);
                std::thread::sleep(std::time::Duration::from_micros(300));
            }
        });

        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let mut env = RealEnv::new();
        let sorter = ExternalSorter::new(cfg);
        let outcome = sorter.sort(&mut source, &mut store, &mut env, &budget);
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        fluctuator.join().unwrap();

        let sorted = masort_core::verify::collect_run(&mut store, outcome.output_run);
        masort_core::verify::assert_sorted_permutation(&input, &sorted);
    }
}

#[test]
fn file_store_backed_sort_survives_fluctuation() {
    let input = random_tuples(8_000, 3);
    let cfg = small_cfg(10, AlgorithmSpec::recommended());
    let budget = MemoryBudget::new(cfg.memory_pages);
    let b = budget.clone();
    let handle = std::thread::spawn(move || {
        for i in 0..200u64 {
            b.set_target(if i % 2 == 0 { 4 } else { 16 }, i as f64);
            std::thread::sleep(std::time::Duration::from_micros(100));
        }
    });
    let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
    let mut store = FileStore::in_temp_dir().unwrap();
    let mut env = RealEnv::new();
    let outcome = ExternalSorter::new(cfg).sort(&mut source, &mut store, &mut env, &budget);
    handle.join().unwrap();
    let sorted = masort_core::verify::collect_run(&mut store, outcome.output_run);
    masort_core::verify::assert_sorted_permutation(&input, &sorted);
}

#[test]
fn tiny_memory_floor_still_sorts() {
    // Even a budget of zero pages (the DBMS took everything) must not wedge
    // the sort: it keeps a minimal working set and completes.
    let input = random_tuples(2_000, 4);
    for alg in ["repl6,opt,split", "quick,opt,split"] {
        let cfg = small_cfg(1, alg.parse().unwrap());
        let budget = MemoryBudget::new(0);
        let mut source = VecSource::from_tuples(input.clone(), cfg.tuples_per_page());
        let mut store = MemStore::new();
        let mut env = RealEnv::new();
        let outcome = ExternalSorter::new(cfg).sort(&mut source, &mut store, &mut env, &budget);
        let sorted = masort_core::verify::collect_run(&mut store, outcome.output_run);
        masort_core::verify::assert_sorted_permutation(&input, &sorted);
    }
}

#[test]
fn outcome_statistics_are_consistent() {
    let input = random_tuples(6_000, 5);
    let cfg = small_cfg(6, AlgorithmSpec::recommended());
    let sorter = ExternalSorter::new(cfg);
    let (sorted, outcome) = sorter.sort_vec_with_stats(input.clone());
    assert_eq!(sorted.len(), input.len());
    assert_eq!(outcome.split.total_tuples(), input.len());
    assert!(outcome.merge.steps_executed >= 1);
    assert!(outcome.split.pages_written >= outcome.runs_formed());
    assert!(outcome.response_time >= outcome.split.duration());
}
