//! Presortedness-adaptive run formation, end to end: with `adaptive_runs` on,
//! every algorithm combination produces the *bit-identical* sorted output of
//! its classic counterpart — across ascending, descending and custom-key
//! orders, both page layouts, and single- and multi-worker splits — while
//! descending (reversed) runs round-trip through the file store.

use memory_adaptive_sort::core::GenOrder;
use memory_adaptive_sort::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_tuples(n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Tuple::synthetic(rng.gen::<u64>() >> 8, 64))
        .collect()
}

fn cfg(spec: AlgorithmSpec, layout: PageLayout, workers: usize, adaptive: bool) -> SortConfig {
    SortConfig::default()
        .with_page_size(512)
        .with_tuple_size(64)
        .with_memory_pages(5)
        .with_algorithm(spec)
        .with_layout(layout)
        .with_cpu_threads(workers)
        .with_adaptive_runs(adaptive)
}

fn sort_with(base: SortConfig, order: &SortOrder, input: &[Tuple]) -> Vec<Tuple> {
    SortJob::builder()
        .config(base.with_order(order.clone()))
        .tuples(input.to_vec())
        .build()
        .unwrap()
        .run()
        .unwrap()
        .into_sorted_vec()
        .unwrap()
}

/// The tentpole's contract: the adaptive knob changes run boundaries, run
/// directions and fan-in — never the output. Exercised over all 18 algorithm
/// combinations x 3 sort orders x both layouts x {1, 2, 4} workers.
#[test]
fn adaptive_output_is_bit_identical_across_the_matrix() {
    // A mix of presorted stretches and noise so adaptive formation actually
    // detects natural runs instead of degenerating to the classic path.
    let mut input = random_tuples(1_500, 42);
    input[300..700].sort_unstable_by_key(|t| t.key);
    input[900..1200].sort_unstable_by_key(|t| std::cmp::Reverse(t.key));

    // The custom key is bijective (byte-swap), so ranks are unique and
    // bit-identity is well-defined under every order.
    let orders: [(&str, SortOrder); 3] = [
        ("asc", SortOrder::ascending()),
        ("desc", SortOrder::descending()),
        ("custom", SortOrder::by_key(|t: &Tuple| t.key.swap_bytes())),
    ];
    for spec in AlgorithmSpec::all(6) {
        for (name, order) in &orders {
            for layout in [PageLayout::Owned, PageLayout::dense_for_payload(64)] {
                for workers in [1usize, 2, 4] {
                    let classic = sort_with(cfg(spec, layout, workers, false), order, &input);
                    let adaptive = sort_with(cfg(spec, layout, workers, true), order, &input);
                    assert_eq!(
                        classic, adaptive,
                        "adaptive output diverged: {spec:?} {name} {layout:?} {workers}w"
                    );
                }
            }
        }
    }
}

/// A fully presorted input collapses to a single natural run; a fully
/// reversed one to a single *descending* run — and the merge reads the
/// latter back-to-front from the file store, so the sorted stream is intact.
#[test]
fn reversed_input_round_trips_through_the_file_store() {
    for layout in [PageLayout::Owned, PageLayout::dense_for_payload(64)] {
        let base = cfg(AlgorithmSpec::recommended(), layout, 1, true);
        let tpp = base.tuples_per_page();
        let input = GenSource::new(120, tpp, 64, 9).with_order(GenOrder::Reversed);
        let completion = SortJob::builder()
            .config(base)
            .input(input)
            .store(FileStore::in_temp_dir().unwrap())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let split = completion.outcome.split.clone();
        assert_eq!(split.run_count(), 1, "reversed input should be one run");
        assert!(
            split.natural_tuples > 0,
            "order detection never engaged ({layout:?})"
        );
        let sorted = completion.into_sorted_vec().unwrap();
        assert_eq!(sorted.len(), 120 * tpp);
        assert!(sorted.windows(2).all(|w| w[0].key <= w[1].key));
    }
}

/// Natural-run statistics surface through the job outcome — and stay zero
/// with the knob off, so classic runs are observably classic.
#[test]
fn natural_run_statistics_reach_the_outcome() {
    let mut input = random_tuples(3_000, 11);
    input.sort_unstable_by_key(|t| t.key);
    for (adaptive, workers) in [(true, 1), (true, 2), (false, 1)] {
        let completion = SortJob::builder()
            .config(cfg(
                AlgorithmSpec::recommended(),
                PageLayout::Owned,
                workers,
                adaptive,
            ))
            .tuples(input.clone())
            .build()
            .unwrap()
            .run()
            .unwrap();
        let split = &completion.outcome.split;
        if adaptive {
            assert!(split.natural_runs >= 1, "{workers}w: no natural runs");
            assert!(split.natural_tuples > input.len() / 2);
            assert!(split.max_run_tuples() >= split.min_run_tuples());
            assert!(split.avg_run_tuples() > 0.0);
        } else {
            assert_eq!(split.natural_runs, 0);
            assert_eq!(split.natural_tuples, 0);
        }
        assert_eq!(split.total_tuples(), input.len());
    }
}
